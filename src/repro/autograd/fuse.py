"""Fused composite kernels (the repo's ``torch.compile`` analog, paper Opt2).

A DeePMD layer is ``x + tanh(x @ W + b)``: four primitive kernels when
executed eagerly.  The fused variants below execute the whole layer as *one*
kernel launch, and -- in the common first-order path -- compute all three
parent gradients in one fused backward launch as well.

Correctness under double backward is preserved by a dual-path backward:

* grad mode **off** during backward (the usual ``create_graph=False`` case)
  -> a single fused raw-numpy backward kernel;
* grad mode **on** (``create_graph=True``, needed when the result will be
  differentiated again, e.g. building the force graph) -> the backward is
  composed from primitive ops so higher-order derivatives stay exact.

Layers pick fused vs eager based on ``config.fused_elementwise`` via the
``linear* `` dispatchers at the bottom, so flipping one flag reproduces the
paper's Opt2 kernel-count drop without touching model code.
"""

from __future__ import annotations

import numpy as np

from .config import config
from .instrument import record_launch, register_op
from .tensor import Tensor, as_tensor, make_op
from . import ops

# fused forward kernels keep exact higher-order derivatives via the
# dual-path backward (composed from primitives when grad mode is on); the
# raw ``*_bwd_fused`` kernels only ever run with grad mode off, so they
# are registered as first-order-only backward launches
for _name in ("linear_fused", "linear_tanh_fused", "residual_linear_tanh_fused"):
    register_op(_name, kind="fused")
for _name in (
    "linear_bwd_fused", "linear_tanh_bwd_fused", "residual_linear_tanh_bwd_fused",
):
    register_op(_name, kind="backward", second_order=False)
del _name


def _batch_flatten(t: Tensor, last: int) -> Tensor:
    return ops.reshape(t, (-1, last))


def _linear_grads_composed(g: Tensor, x: Tensor, W: Tensor, b: Tensor):
    """(gx, gW, gb) for out = x @ W + b, built from primitives."""
    gx = ops.matmul(g, ops.swapaxes(W, -1, -2))
    n_in, n_out = W.shape
    gW = ops.matmul(
        ops.swapaxes(_batch_flatten(x, n_in), -1, -2), _batch_flatten(g, n_out)
    )
    gb = ops.tsum(_batch_flatten(g, n_out), axis=0)
    return gx, gW, gb


# ---------------------------------------------------------------------------
# eager (unfused) layer implementations
# ---------------------------------------------------------------------------
def linear_eager(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    return ops.add(ops.matmul(x, W), b)


def linear_tanh_eager(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    return ops.tanh(linear_eager(x, W, b))


def residual_linear_tanh_eager(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    return ops.add(x, linear_tanh_eager(x, W, b))


# ---------------------------------------------------------------------------
# fused layer implementations
# ---------------------------------------------------------------------------
def linear_fused(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    x, W, b = as_tensor(x), as_tensor(W), as_tensor(b)
    out_arr = x.data @ W.data + b.data

    def backward(g: Tensor):
        if config.grad_enabled:
            return _linear_grads_composed(g, x, W, b)
        gd = g.data
        gx = gd @ W.data.T
        g2 = gd.reshape(-1, W.shape[1])
        gW = x.data.reshape(-1, W.shape[0]).T @ g2
        gb = g2.sum(axis=0)
        record_launch("linear_bwd_fused", gx.nbytes + gW.nbytes + gb.nbytes)
        return Tensor(gx), Tensor(gW), Tensor(gb)

    return make_op(out_arr, (x, W, b), backward, "linear_fused")


def linear_tanh_fused(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    x, W, b = as_tensor(x), as_tensor(W), as_tensor(b)
    t_arr = np.tanh(x.data @ W.data + b.data)

    def backward(g: Tensor):
        if config.grad_enabled:
            t = ops.tanh(linear_fused(x, W, b))
            gpre = ops.mul(g, ops.sub(1.0, ops.mul(t, t)))
            return _linear_grads_composed(gpre, x, W, b)
        gpre = g.data * (1.0 - t_arr * t_arr)
        gx = gpre @ W.data.T
        g2 = gpre.reshape(-1, W.shape[1])
        gW = x.data.reshape(-1, W.shape[0]).T @ g2
        gb = g2.sum(axis=0)
        record_launch("linear_tanh_bwd_fused", gx.nbytes + gW.nbytes + gb.nbytes)
        return Tensor(gx), Tensor(gW), Tensor(gb)

    return make_op(t_arr, (x, W, b), backward, "linear_tanh_fused")


def residual_linear_tanh_fused(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    x, W, b = as_tensor(x), as_tensor(W), as_tensor(b)
    t_arr = np.tanh(x.data @ W.data + b.data)
    out_arr = x.data + t_arr

    def backward(g: Tensor):
        if config.grad_enabled:
            t = ops.tanh(linear_fused(x, W, b))
            gpre = ops.mul(g, ops.sub(1.0, ops.mul(t, t)))
            gx, gW, gb = _linear_grads_composed(gpre, x, W, b)
            return ops.add(gx, g), gW, gb
        gpre = g.data * (1.0 - t_arr * t_arr)
        gx = gpre @ W.data.T + g.data
        g2 = gpre.reshape(-1, W.shape[1])
        gW = x.data.reshape(-1, W.shape[0]).T @ g2
        gb = g2.sum(axis=0)
        record_launch("residual_linear_tanh_bwd_fused", gx.nbytes + gW.nbytes + gb.nbytes)
        return Tensor(gx), Tensor(gW), Tensor(gb)

    return make_op(out_arr, (x, W, b), backward, "residual_linear_tanh_fused")


# ---------------------------------------------------------------------------
# dispatchers -- model code calls these
# ---------------------------------------------------------------------------
def linear(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    """out = x @ W + b, fused or eager per ``config.fused_elementwise``."""
    if config.fused_elementwise:
        return linear_fused(x, W, b)
    return linear_eager(x, W, b)


def linear_tanh(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    """out = tanh(x @ W + b)."""
    if config.fused_elementwise:
        return linear_tanh_fused(x, W, b)
    return linear_tanh_eager(x, W, b)


def residual_linear_tanh(x: Tensor, W: Tensor, b: Tensor) -> Tensor:
    """out = x + tanh(x @ W + b) (DeePMD residual layer)."""
    if config.fused_elementwise:
        return residual_linear_tanh_fused(x, W, b)
    return residual_linear_tanh_eager(x, W, b)
