"""Primitive differentiable operations.

Every function here is one "kernel": it computes its result with numpy,
records exactly one launch with the instrumentation layer, and registers a
backward closure written *in terms of these same primitives* so that
gradients are themselves differentiable (double backward).

Broadcasting follows numpy semantics; gradients are reduced back to the
operand shapes with :func:`unbroadcast`, which is itself built from ``sum``
and ``reshape`` ops and therefore also double-backward safe.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .instrument import register_op
from .tensor import Tensor, as_tensor, make_op

Scalar = Union[int, float]

# every primitive kernel this module may launch, with its static analysis
# properties (second_order: the backward closure is composed of these same
# primitives, so double backward is exact; may_view: numpy may hand back a
# view of the input buffer).  repro.analysis lints tapes and call sites
# against this table.
for _name in (
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "tanh",
    "sqrt", "abs", "maximum", "minimum", "where", "sum", "broadcast",
    "concat", "scatter_add", "matmul", "cmp_mask", "sign",
):
    register_op(_name)
for _name in ("reshape", "transpose", "gather"):
    register_op(_name, may_view=True)
del _name
TensorLike = Union[Tensor, Scalar, np.ndarray]


# ---------------------------------------------------------------------------
# broadcasting support
# ---------------------------------------------------------------------------
def unbroadcast(g: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce gradient ``g`` back to ``shape`` after numpy broadcasting."""
    if g.shape == shape:
        return g
    extra = g.ndim - len(shape)
    if extra > 0:
        g = tsum(g, axis=tuple(range(extra)))
    keep_axes = tuple(
        i for i, (gs, ss) in enumerate(zip(g.shape, shape)) if ss == 1 and gs != 1
    )
    if keep_axes:
        g = tsum(g, axis=keep_axes, keepdims=True)
    if g.shape != shape:
        g = reshape(g, shape)
    return g


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------
def add(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data

    def backward(g: Tensor):
        return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

    return make_op(out, (a, b), backward, "add")


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data

    def backward(g: Tensor):
        return unbroadcast(g, a.shape), unbroadcast(neg(g), b.shape)

    return make_op(out, (a, b), backward, "sub")


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data

    def backward(g: Tensor):
        return unbroadcast(mul(g, b), a.shape), unbroadcast(mul(g, a), b.shape)

    return make_op(out, (a, b), backward, "mul")


def div(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data

    def backward(g: Tensor):
        ga = unbroadcast(div(g, b), a.shape)
        gb = unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape)
        return ga, gb

    return make_op(out, (a, b), backward, "div")


def neg(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out = -a.data

    def backward(g: Tensor):
        return (neg(g),)

    return make_op(out, (a,), backward, "neg")


def power(a: TensorLike, p: Scalar) -> Tensor:
    """``a ** p`` for a python-scalar exponent."""
    a = as_tensor(a)
    p = float(p)
    out = a.data**p

    def backward(g: Tensor):
        return (mul(g, mul(power(a, p - 1.0), p)),)

    return make_op(out, (a,), backward, "pow", attrs={"p": p})


def exp(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_arr = np.exp(a.data)

    def backward(g: Tensor):
        return (mul(g, out),)

    out = make_op(out_arr, (a,), backward, "exp")
    return out


def log(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out = np.log(a.data)

    def backward(g: Tensor):
        return (div(g, a),)

    return make_op(out, (a,), backward, "log")


def tanh(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_arr = np.tanh(a.data)

    def backward(g: Tensor):
        return (mul(g, sub(1.0, mul(out, out))),)

    out = make_op(out_arr, (a,), backward, "tanh")
    return out


def sqrt(a: TensorLike) -> Tensor:
    a = as_tensor(a)
    out_arr = np.sqrt(a.data)

    def backward(g: Tensor):
        return (div(mul(g, 0.5), out),)

    out = make_op(out_arr, (a,), backward, "sqrt")
    return out


def sign_of(a: TensorLike) -> Tensor:
    """sign(a) as a *recorded* zero-gradient op.

    Recording the sign (rather than baking it into a closure constant)
    keeps the backward of :func:`absolute` replayable by the tape
    compiler: the mask is recomputed from the live operand on every
    replay instead of being frozen at trace time.
    """
    a = as_tensor(a)
    out = np.sign(a.data)

    def backward(g: Tensor):
        return (None,)

    return make_op(out, (a,), backward, "sign")


def _cmp_mask(a: Tensor, b: Tensor, mode: str) -> Tensor:
    """Float {0,1} comparison mask as a recorded zero-gradient op
    (``mode`` is ``"ge"`` or ``"le"``); see :func:`sign_of` for why the
    mask is an op rather than a closure constant."""
    arr = a.data >= b.data if mode == "ge" else a.data <= b.data
    out = arr.astype(np.float64)

    def backward(g: Tensor):
        return None, None

    return make_op(out, (a, b), backward, "cmp_mask", attrs={"cmp": mode})


def absolute(a: TensorLike) -> Tensor:
    """|a|; the subgradient at 0 is taken as 0."""
    a = as_tensor(a)
    out = np.abs(a.data)

    def backward(g: Tensor):
        return (mul(g, sign_of(a)),)

    return make_op(out, (a,), backward, "abs")


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise max; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(a.data >= b.data, a.data, b.data)

    def backward(g: Tensor):
        m = _cmp_mask(a, b, "ge")
        gm = mul(g, m)
        # g - g*m == g*(1-m) bit-for-bit on a {0,1} mask, without baking
        # a second mask constant into the closure
        ga = unbroadcast(gm, a.shape)
        gb = unbroadcast(sub(g, gm), b.shape)
        return ga, gb

    return make_op(out, (a, b), backward, "maximum")


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise min; ties send the full gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(a.data <= b.data, a.data, b.data)

    def backward(g: Tensor):
        m = _cmp_mask(a, b, "le")
        gm = mul(g, m)
        ga = unbroadcast(gm, a.shape)
        gb = unbroadcast(sub(g, gm), b.shape)
        return ga, gb

    return make_op(out, (a, b), backward, "minimum")


def where(cond: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Select ``a`` where the constant boolean mask holds, else ``b``.

    The float mask rides as a third (zero-gradient) parent so the tape
    compiler can rebind it per batch; the backward computes the ``b``
    branch as ``g - g*mask`` (bit-equal to ``g*(1-mask)`` on a {0,1}
    mask) to avoid baking a derived ``1-mask`` constant.
    """
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(cond, dtype=bool)
    out = np.where(cond, a.data, b.data)
    fmask_t = Tensor(cond.astype(np.float64))

    def backward(g: Tensor):
        gm = mul(g, fmask_t)
        ga = unbroadcast(gm, a.shape)
        gb = unbroadcast(sub(g, gm), b.shape)
        return ga, gb, None

    return make_op(out, (a, b, fmask_t), backward, "where", attrs={"cond": cond})


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------
def tsum(
    a: TensorLike,
    axis: Optional[Union[int, tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> Tensor:
    a = as_tensor(a)
    out = np.sum(a.data, axis=axis, keepdims=keepdims)
    in_shape = a.shape
    if axis is None:
        axes = tuple(range(len(in_shape)))
    elif isinstance(axis, int):
        axes = (axis % max(len(in_shape), 1),)
    else:
        axes = tuple(ax % len(in_shape) for ax in axis)

    def backward(g: Tensor):
        if not keepdims and in_shape:
            expand_shape = list(in_shape)
            for ax in axes:
                expand_shape[ax] = 1
            g = reshape(g, tuple(expand_shape))
        return (broadcast_to(g, in_shape),)

    # attrs keep the *original* axis argument: np.sum(axis=None) flattens
    # and may pair-sum differently from an equivalent axis tuple, and the
    # compiler must replay the exact reduction
    return make_op(
        np.asarray(out), (a,), backward, "sum",
        attrs={"axis": axis, "keepdims": keepdims},
    )


def tmean(
    a: TensorLike,
    axis: Optional[Union[int, tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> Tensor:
    a = as_tensor(a)
    if axis is None:
        count = a.size
    else:
        axes = (axis,) if isinstance(axis, int) else axis
        count = 1
        for ax in axes:
            count *= a.shape[ax]
    return div(tsum(a, axis=axis, keepdims=keepdims), float(count))


def broadcast_to(a: TensorLike, shape: tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    out = np.broadcast_to(a.data, shape).copy()

    def backward(g: Tensor):
        return (unbroadcast(g, a.shape),)

    return make_op(out, (a,), backward, "broadcast", attrs={"shape": tuple(shape)})


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------
def reshape(a: TensorLike, shape: Union[int, tuple[int, ...]]) -> Tensor:
    a = as_tensor(a)
    if isinstance(shape, int):
        shape = (shape,)
    out = a.data.reshape(shape)
    in_shape = a.shape

    def backward(g: Tensor):
        return (reshape(g, in_shape),)

    return make_op(out, (a,), backward, "reshape", attrs={"shape": tuple(shape)})


def transpose(a: TensorLike, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    axes = tuple(axes)
    out = np.transpose(a.data, axes)
    inv = tuple(np.argsort(axes))

    def backward(g: Tensor):
        return (transpose(g, inv),)

    return make_op(out, (a,), backward, "transpose", attrs={"axes": axes})


def swapaxes(a: TensorLike, ax1: int, ax2: int) -> Tensor:
    a = as_tensor(a)
    axes = list(range(a.ndim))
    axes[ax1], axes[ax2] = axes[ax2], axes[ax1]
    return transpose(a, axes)


def concat(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: Tensor):
        grads = []
        for i in range(len(ts)):
            idx = [slice(None)] * out.ndim
            idx[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
            grads.append(index(g, tuple(idx)))
        return tuple(grads)

    return make_op(out, tuple(ts), backward, "concat", attrs={"axis": axis})


# ---------------------------------------------------------------------------
# indexing (gather / scatter-add) -- the backbone of neighbor-list gathers
# ---------------------------------------------------------------------------
def index(a: TensorLike, idx) -> Tensor:
    """``a[idx]`` for a *constant* index (slices, ints, integer arrays).

    Backward is a scatter-add into a zeros tensor of ``a``'s shape, which is
    itself differentiable (its backward is this gather again), so neighbor
    gathers survive double backward.
    """
    a = as_tensor(a)
    out = a.data[idx]
    if np.isscalar(out) or out.ndim == 0:
        out = np.asarray(out)
    in_shape = a.shape

    def backward(g: Tensor):
        return (index_add(in_shape, idx, g),)

    return make_op(np.ascontiguousarray(out), (a,), backward, "gather", attrs={"idx": idx})


def index_add(shape: tuple[int, ...], idx, values: TensorLike) -> Tensor:
    """zeros(shape) with ``values`` scatter-added at ``idx`` (constant)."""
    values = as_tensor(values)
    out = np.zeros(shape, dtype=values.dtype if values.dtype.kind == "f" else np.float64)
    np.add.at(out, idx, values.data)

    def backward(g: Tensor):
        return (index(g, idx),)

    return make_op(
        out, (values,), backward, "scatter_add",
        attrs={"shape": tuple(shape), "idx": idx},
    )


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------
def matmul(a: TensorLike, b: TensorLike) -> Tensor:
    """Batched matrix multiply with numpy broadcasting on batch dims."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul requires operands with ndim >= 2")
    out = a.data @ b.data

    def backward(g: Tensor):
        ga = unbroadcast(matmul(g, swapaxes(b, -1, -2)), a.shape)
        gb = unbroadcast(matmul(swapaxes(a, -1, -2), g), b.shape)
        return ga, gb

    return make_op(out, (a, b), backward, "matmul")


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------
def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def zeros_like(t: Tensor) -> Tensor:
    return Tensor(np.zeros_like(t.data))


def ones_like(t: Tensor) -> Tensor:
    return Tensor(np.ones_like(t.data))


# ---------------------------------------------------------------------------
# attach operator sugar to Tensor
# ---------------------------------------------------------------------------
def _install_tensor_methods() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, p: power(self, p)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, idx: index(self, idx)
    Tensor.tanh = lambda self: tanh(self)
    Tensor.exp = lambda self: exp(self)
    Tensor.log = lambda self: log(self)
    Tensor.sqrt = lambda self: sqrt(self)
    Tensor.abs = lambda self: absolute(self)
    Tensor.sum = lambda self, axis=None, keepdims=False: tsum(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: tmean(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    )
    Tensor.transpose = lambda self, *axes: transpose(self, axes if axes else None)
    Tensor.swapaxes = lambda self, ax1, ax2: swapaxes(self, ax1, ax2)


_install_tensor_methods()
