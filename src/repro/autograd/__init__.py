"""repro.autograd -- reverse-mode autodiff on numpy with double backward.

Public surface::

    from repro.autograd import Tensor, grad, no_grad, fused_kernels
    from repro.autograd import ops            # primitive functional ops
    from repro.autograd import capture        # unified op-stream observers
    from repro.autograd.fuse import linear_tanh, residual_linear_tanh
    from repro.autograd.instrument import KernelCounter
"""

from .config import config, enable_grad, fused_kernels, no_grad
from .gradcheck import check_gradients, check_second_order, numerical_grad
from .instrument import (
    KernelCounter,
    OpInfo,
    op_info,
    record_launch,
    register_op,
    registered_ops,
)
from .tensor import GRAD_DTYPE, Tensor, as_tensor, grad, make_op
from .capture import Sanitizer, SanitizerError, TapeEntry, TapeRecorder, capture
from . import fuse, ops

__all__ = [
    "Tensor",
    "capture",
    "TapeRecorder",
    "TapeEntry",
    "Sanitizer",
    "SanitizerError",
    "as_tensor",
    "grad",
    "make_op",
    "no_grad",
    "enable_grad",
    "fused_kernels",
    "config",
    "ops",
    "fuse",
    "GRAD_DTYPE",
    "KernelCounter",
    "record_launch",
    "OpInfo",
    "register_op",
    "op_info",
    "registered_ops",
    "check_gradients",
    "check_second_order",
    "numerical_grad",
]
