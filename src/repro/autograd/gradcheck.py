"""Finite-difference gradient checking.

Used extensively by the test suite to validate every primitive op, the
fused kernels, the DeePMD forward/force pipeline, and the hand-derived
symmetry-descriptor kernels against central differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, grad


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn(*inputs)`` w.r.t.
    ``inputs[wrt]``.  ``fn`` receives Tensors and must return a scalar
    Tensor."""
    base = [np.array(x, dtype=np.float64) for x in inputs]
    g = np.zeros_like(base[wrt])
    flat = base[wrt].reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = fn(*[Tensor(x) for x in base]).item()
        flat[i] = orig - eps
        fm = fn(*[Tensor(x) for x in base]).item()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return g


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Assert the autograd gradient of the scalar ``fn`` matches central
    differences for *every* input.  Raises ``AssertionError`` with the
    offending input index on mismatch."""
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    analytic = grad(out, tensors)
    for i in range(len(inputs)):
        num = numerical_grad(fn, inputs, wrt=i, eps=eps)
        ana = analytic[i].data
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            err = np.max(np.abs(ana - num))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{ana}\nnumerical:\n{num}"
            )
