"""Finite-difference gradient checking.

Used extensively by the test suite to validate every primitive op, the
fused kernels, the DeePMD forward/force pipeline, and the hand-derived
symmetry-descriptor kernels against central differences.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from . import ops
from .tensor import Tensor, grad


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn(*inputs)`` w.r.t.
    ``inputs[wrt]``.  ``fn`` receives Tensors and must return a scalar
    Tensor."""
    base = [np.array(x, dtype=np.float64) for x in inputs]
    g = np.zeros_like(base[wrt])
    flat = base[wrt].reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = fn(*[Tensor(x) for x in base]).item()
        flat[i] = orig - eps
        fm = fn(*[Tensor(x) for x in base]).item()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return g


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Assert the autograd gradient of the scalar ``fn`` matches central
    differences for *every* input.  Raises ``AssertionError`` with the
    offending input index on mismatch."""
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    analytic = grad(out, tensors)
    for i in range(len(inputs)):
        num = numerical_grad(fn, inputs, wrt=i, eps=eps)
        ana = analytic[i].data
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            err = np.max(np.abs(ana - num))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{ana}\nnumerical:\n{num}"
            )


def check_second_order(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    directions: Optional[Sequence[np.ndarray]] = None,
    eps: float = 1e-5,
    atol: float = 1e-5,
    rtol: float = 1e-3,
    seed: int = 0,
) -> None:
    """Assert exact double backward for the scalar ``fn``.

    The checked quantity is ``z(x) = sum_j <dfn/dx_j, v_j>`` -- the
    first-order analytic gradient contracted with fixed direction vectors
    ``v`` (random unless ``directions`` is given).  Its analytic gradient
    comes from differentiating *through* the backward pass
    (``create_graph=True``, exactly how the force label enters training);
    the reference is a central difference of the analytic first-order
    gradient.  Raises ``AssertionError`` with the offending input index on
    mismatch -- an op whose backward closure is not itself differentiable
    (a missing second-order rule) shows up here as a hard error or a large
    deviation.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]
    if directions is None:
        rng = np.random.default_rng(seed)
        directions = [rng.standard_normal(b.shape) for b in base]
    else:
        directions = [np.array(v, dtype=np.float64) for v in directions]
        if len(directions) != len(base):
            raise ValueError("need one direction vector per input")

    def grad_dot_v(arrs: Sequence[np.ndarray]) -> float:
        """z at ``arrs``, via the analytic first-order gradient."""
        tensors = [Tensor(a, requires_grad=True) for a in arrs]
        gs = grad(fn(*tensors), tensors)
        return sum(
            float(np.sum(g.data * v)) for g, v in zip(gs, directions)
        )

    # analytic second order: differentiate z through the backward graph
    tensors = [Tensor(a, requires_grad=True) for a in base]
    gs = grad(fn(*tensors), tensors, create_graph=True)
    z: Optional[Tensor] = None
    for g, v in zip(gs, directions):
        term = ops.tsum(ops.mul(g, Tensor(v)))
        z = term if z is None else ops.add(z, term)
    assert z is not None
    if not z.requires_grad:
        raise AssertionError(
            "first-order gradient of fn is disconnected from its inputs: "
            "some op on the path records a raw backward with no graph "
            "(missing second-order rule)"
        )
    second = grad(z, tensors)

    for i in range(len(base)):
        num = np.zeros_like(base[i])
        flat = base[i].reshape(-1)
        nflat = num.reshape(-1)
        for j in range(flat.size):
            orig = flat[j]
            flat[j] = orig + eps
            zp = grad_dot_v(base)
            flat[j] = orig - eps
            zm = grad_dot_v(base)
            flat[j] = orig
            nflat[j] = (zp - zm) / (2.0 * eps)
        ana = second[i].data
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            err = np.max(np.abs(ana - num))
            raise AssertionError(
                f"second-order mismatch for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{ana}\nnumerical:\n{num}"
            )
