"""One entry point for every op-stream observer: ``autograd.capture``.

Historically each observer had its own ad-hoc installation ritual:
``analysis.record_tape()`` for tape recording, ``analysis.Sanitizer()``
as a hand-rolled context manager for NaN/Inf guarding, and the profiler
rode in on ``Tracer(profile=True)`` / the worker task protocol's
``capture="profile"`` flag.  All three sit on the same thread-local
launch-sink stack of :mod:`repro.autograd.instrument`; this module folds
them behind a single composable context manager::

    with capture("tape") as tape:            # op tape (graph-lint, compiler)
        loss = model(batch)

    with capture("count") as kc:             # kernel-launch counting
        ...
    kc.total_launches

    with capture("sanitize", mode="collect") as san:   # NaN/Inf guard
        ...

    with Tracer(keep_events=True) as tr:
        with capture("profile", tracer=tr):  # span-attributed op timeline
            ...
    tr.profiler.events

Captures *compose and nest* freely -- each pushes exactly one sink on the
calling thread's stack, so a sanitizer inside a tape inside a counter all
observe the same ops.  The tape compiler consumes tapes exclusively
through this surface (``capture("tape", graph=True)`` forces graph edges
onto every op output so the recorded tape carries complete parentage).

The sink classes themselves (:class:`TapeRecorder`, :class:`Sanitizer`)
live here; :mod:`repro.analysis.graphlint` re-exports them for
compatibility and keeps a deprecated ``record_tape`` shim.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from .instrument import KernelCounter, push_sink, remove_sink
from .tensor import Tensor

__all__ = [
    "TapeEntry",
    "TapeRecorder",
    "Sanitizer",
    "SanitizerError",
    "capture",
]


class TapeEntry:
    """One op output captured on the tape.

    Holds the live tensor (the tape pins the graph alive for the linter
    and the compiler) plus a CRC of the buffer at record time, so later
    mutation of the recorded array -- autograd's cardinal sin -- is
    detectable.
    """

    __slots__ = ("tensor", "op", "seq", "crc")

    def __init__(self, tensor: Tensor, seq: int):
        self.tensor = tensor
        self.op = tensor._op
        self.seq = seq
        self.crc = zlib.crc32(np.ascontiguousarray(tensor.data).tobytes())

    def mutated(self) -> bool:
        return zlib.crc32(np.ascontiguousarray(self.tensor.data).tobytes()) != self.crc


class TapeRecorder:
    """Launch sink that captures every op output tensor (and every raw
    kernel-launch name) on the installing thread."""

    def __init__(self):
        self.entries: list[TapeEntry] = []
        self.launch_names: list[str] = []

    # sink protocol -----------------------------------------------------
    def record(self, op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
        self.launch_names.append(op_name)

    def record_tensor(self, tensor: Tensor) -> None:
        self.entries.append(TapeEntry(tensor, len(self.entries)))

    def __len__(self) -> int:
        return len(self.entries)

    def crc(self) -> int:
        """CRC of the tape *structure* (op sequence + buffer CRCs): the
        identity half of a compiled-plan cache key."""
        acc = 0
        for e in self.entries:
            acc = zlib.crc32(e.op.encode(), acc)
            acc = zlib.crc32(e.crc.to_bytes(4, "little"), acc)
        return acc


# ---------------------------------------------------------------------------
# dynamic NaN/Inf sanitizer
# ---------------------------------------------------------------------------
class SanitizerError(FloatingPointError):
    """Raised by :class:`Sanitizer` in ``raise`` mode at the first
    non-finite op output."""


class Sanitizer:
    """NaN/Inf guard hooks on every op, with telemetry-span attribution.

    The sink behind ``capture("sanitize")``: checks every op output on the
    installing thread for non-finite values as it is produced.  Each hit
    records the op name, the count of non-finite elements, and the
    innermost open telemetry span (e.g. ``fekf.backward``) so the failure
    is attributed to a training phase, not discovered epochs later in a
    loss printout.  ``mode="raise"`` (default) aborts at the first hit;
    ``mode="collect"`` accumulates findings for :meth:`report`.

    Usable directly as a context manager (the historical surface)::

        with Sanitizer(mode="collect") as san:
            trainer.run(...)
        print(san.report().render())
    """

    def __init__(self, mode: str = "raise", max_findings: int = 100):
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.max_findings = max_findings
        self.findings: list = []
        self.ops_checked = 0

    # sink protocol -----------------------------------------------------
    def record(self, op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
        pass  # launches carry no buffer to check

    def record_tensor(self, tensor: Tensor) -> None:
        data = tensor.data
        if data.dtype.kind != "f":
            return
        self.ops_checked += 1
        if np.isfinite(data).all():
            return
        # deferred imports: autograd must stay importable without the
        # telemetry/analysis packages being initialized first
        from ..analysis.findings import Finding
        from ..telemetry.trace import current_span_name

        bad = int(np.size(data) - np.count_nonzero(np.isfinite(data)))
        span = current_span_name()
        where = f" in span {span!r}" if span else ""
        finding = Finding(
            rule="non-finite",
            message=f"op {tensor._op!r} produced {bad} non-finite "
                    f"value(s){where}",
            context={"op": tensor._op, "span": span, "count": bad},
        )
        self.findings.append(finding)
        if self.mode == "raise":
            raise SanitizerError(finding.render())
        if len(self.findings) >= self.max_findings:
            raise SanitizerError(
                f"sanitizer collected {len(self.findings)} non-finite ops; "
                f"aborting (raise max_findings to keep going)"
            )

    # lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Sanitizer":
        push_sink(self, wants_tensors=True)
        return self

    def __exit__(self, *exc) -> None:
        remove_sink(self, wants_tensors=True)

    def report(self):
        from ..analysis.findings import Report

        rep = Report(tool="sanitizer", checks_run=["non-finite"])
        rep.findings.extend(self.findings)
        rep.metrics["ops_checked"] = self.ops_checked
        return rep


# ---------------------------------------------------------------------------
# the unified entry point
# ---------------------------------------------------------------------------
class capture:
    """Install one op-stream observer on the calling thread.

    Parameters
    ----------
    kind:
        ``"tape"``    -- record every op output (returns :class:`TapeRecorder`);
        ``"count"``   -- count kernel launches (returns
        :class:`~repro.autograd.instrument.KernelCounter`);
        ``"sanitize"`` -- NaN/Inf guard (returns :class:`Sanitizer`);
        ``"profile"`` -- span-attributed op timing (returns
        :class:`~repro.telemetry.profile.Profiler`).
    graph:
        ``kind="tape"`` only: force graph edges (``_parents`` /
        ``_backward_fn``) onto *every* recorded op output, so the tape
        exposes the complete forward dataflow even through no-grad
        regions.  Required by the tape compiler; never changes what
        ``backward`` computes.
    mode, max_findings:
        ``kind="sanitize"`` only: forwarded to :class:`Sanitizer`.
    tracer:
        ``kind="profile"`` only: the :class:`~repro.telemetry.trace.Tracer`
        whose spans attribute the op events.  The tracer must be (or get)
        installed on the same thread; when omitted, a private
        ``Tracer(keep_events=True)`` is created and installed for the
        capture's extent.  The profiler is attached as ``tracer.profiler``
        so downstream span/trace consumers find the op timeline in the
        usual place.
    held_threshold_s:
        ``kind="locks"`` only: holds longer than this become
        ``lock-held-too-long`` warnings on the recorder's report.

    Two further kinds observe the *lock* stream rather than the op
    stream (see :mod:`repro.analysis.concurrency`):

    ``"locks"``  -- install a
    :class:`~repro.analysis.concurrency.LockOrderRecorder` recording
    acquire-order edges of every :class:`TrackedLock`; ``"races"`` --
    install a :class:`~repro.analysis.concurrency.RaceChecker`
    validating every :class:`Guarded` field access against its declared
    lock.  Unlike the op sinks these are **process-global** (they must
    observe every thread, not just the installing one); they still
    compose and nest freely with each other and with op captures.

    Captures compose: nesting any combination pushes independent sinks
    that all observe the same op stream, and each ``__exit__`` removes
    only its own sink.
    """

    KINDS = ("tape", "count", "sanitize", "profile", "locks", "races")

    def __init__(
        self,
        kind: str = "tape",
        *,
        graph: bool = False,
        mode: str = "raise",
        max_findings: int = 100,
        tracer=None,
        held_threshold_s: Optional[float] = None,
    ):
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown capture kind {kind!r}; expected one of {self.KINDS}"
            )
        if graph and kind != "tape":
            raise ValueError("graph=True only applies to kind='tape'")
        if tracer is not None and kind != "profile":
            raise ValueError("tracer= only applies to kind='profile'")
        if held_threshold_s is not None and kind != "locks":
            raise ValueError("held_threshold_s= only applies to kind='locks'")
        self.kind = kind
        self.graph = bool(graph)
        self._tracer = tracer
        self._owns_tracer = False
        self._held_threshold_s = held_threshold_s
        if kind == "tape":
            self.sink = TapeRecorder()
        elif kind == "count":
            self.sink = KernelCounter()
        elif kind == "sanitize":
            self.sink = Sanitizer(mode=mode, max_findings=max_findings)
        else:  # profile/locks/races: lazy deps, sink built on enter
            self.sink = None

    def __enter__(self):
        if self.kind == "locks":
            from ..analysis.concurrency.locks import (
                LockOrderRecorder,
                install_recorder,
            )

            kwargs = {} if self._held_threshold_s is None \
                else {"held_threshold_s": self._held_threshold_s}
            recorder = LockOrderRecorder(**kwargs)
            install_recorder(recorder)
            self.sink = recorder
            return recorder
        if self.kind == "races":
            from ..analysis.concurrency.guard import (
                RaceChecker,
                install_checker,
            )

            checker = RaceChecker()
            install_checker(checker)
            self.sink = checker
            return checker
        if self.kind == "profile":
            from ..telemetry.profile import Profiler
            from ..telemetry.trace import Tracer

            tracer = self._tracer
            if tracer is None:
                tracer = Tracer(keep_events=True)
                tracer.__enter__()
                self._owns_tracer = True
                self._tracer = tracer
            prof = Profiler(tracer)
            tracer.profiler = prof
            prof.install()
            self.sink = prof
            return prof
        push_sink(
            self.sink,
            wants_tensors=self.kind in ("tape", "sanitize"),
            wants_graph=self.graph,
        )
        return self.sink

    def __exit__(self, *exc) -> None:
        if self.kind == "locks":
            from ..analysis.concurrency.locks import uninstall_recorder

            uninstall_recorder(self.sink)
            return
        if self.kind == "races":
            from ..analysis.concurrency.guard import uninstall_checker

            uninstall_checker(self.sink)
            return
        if self.kind == "profile":
            self.sink.uninstall()
            if self._owns_tracer:
                self._tracer.__exit__(*exc)
            return
        remove_sink(
            self.sink,
            wants_tensors=self.kind in ("tape", "sanitize"),
            wants_graph=self.graph,
        )
