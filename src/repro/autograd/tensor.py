"""Reverse-mode automatic differentiation on numpy arrays.

This is the substrate that replaces PyTorch in the reproduction.  Two design
requirements come straight from the paper:

1. **Double backward.**  DeePMD fits atomic *forces*, i.e. the gradient of
   the network output w.r.t. its input coordinates.  Training on forces
   therefore needs gradients *of gradients* (d(dE/dr)/dw).  Every op's
   backward closure is written in terms of tensor ops, so running
   ``backward(create_graph=True)`` builds a differentiable graph of the
   backward pass and higher-order derivatives come out exactly.

2. **Kernel-launch accounting.**  Every primitive op reports itself to
   :mod:`repro.autograd.instrument`, which is how the Figure 7(b)
   kernel-count experiment is reproduced.

The engine is deliberately eager and minimal: a :class:`Tensor` wraps an
``ndarray`` plus (optionally) the closure that maps an output gradient to
parent gradients.  ``backward`` is an iterative reverse topological sweep.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from .config import config, enable_grad, no_grad
from . import instrument as _instrument
from .instrument import record_launch

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: the one floating dtype of the engine.  Float inputs are normalized to it
#: on construction; the Kalman optimizers rely on every graph buffer staying
#: float64 (``repro.analysis`` lints the invariant on recorded tapes).
GRAD_DTYPE = np.float64
#: back-compat alias (pre-analysis name)
_GRAD_DTYPE = GRAD_DTYPE


class Tensor:
    """A numpy array plus an autograd graph edge.

    Parameters
    ----------
    data:
        Array (or scalar / nested list) holding the values.  Float data is
        kept in float64: the Kalman-filter optimizers are sensitive to the
        conditioning of the P update, and the paper's systems run in a
        regime where fp32 round-off visibly perturbs convergence traces.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` for this
        tensor when it participates in a ``backward`` call.
    """

    __slots__ = (
        "data", "requires_grad", "grad", "_parents", "_backward_fn", "_op",
        "_attrs",
    )

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):  # pragma: no cover - defensive
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind == "f" and arr.dtype != _GRAD_DTYPE:
            arr = arr.astype(_GRAD_DTYPE)
        elif arr.dtype.kind != "f" and requires_grad:
            # integer/unsigned/bool/complex data has no meaningful float64
            # gradient; silently keeping (or casting) the buffer used to
            # corrupt downstream Kalman algebra, so refuse loudly instead
            raise TypeError(
                f"only float tensors can require gradients (got dtype "
                f"{arr.dtype}); cast the data to float explicitly first"
            )
        self.data: np.ndarray = arr
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[Tensor] = None
        self._parents: tuple["Tensor", ...] = ()
        self._backward_fn: Optional[Callable] = None
        self._op: str = "leaf"
        #: static op parameters (index arrays, reduction axes, masks ...)
        #: that a tape compiler needs to replay the op; None for most ops
        self._attrs: Optional[dict] = None

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy).  Mutating it bypasses autograd."""
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_tag}, op={self._op})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # graph bookkeeping
    # ------------------------------------------------------------------
    def is_leaf(self) -> bool:
        return self._backward_fn is None

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # backward engine
    # ------------------------------------------------------------------
    def backward(self, grad: Optional["Tensor"] = None, create_graph: bool = False) -> None:
        """Accumulate gradients of ``self`` into the ``.grad`` of every
        reachable leaf with ``requires_grad``.

        ``create_graph=True`` runs the backward closures with graph
        recording enabled so the produced gradients are themselves
        differentiable (needed for force training and for d(force)/dw in
        the EKF updates).
        """
        grads = _run_backward(self, grad, create_graph)
        for node, g in grads.items():
            if node.requires_grad and node.is_leaf():
                if node.grad is None:
                    node.grad = g
                else:
                    node.grad = Tensor(node.grad.data + g.data)

    # operator sugar is attached in ops.py (to avoid an import cycle the
    # primitive implementations live there and register methods here).


def _topo_order(root: Tensor) -> list[Tensor]:
    """Iterative post-order DFS over the subgraph that requires grad."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            if p.requires_grad and id(p) not in visited:
                stack.append((p, False))
    return order


def _run_backward(
    root: Tensor, seed: Optional[Tensor], create_graph: bool
) -> dict[Tensor, Tensor]:
    if not root.requires_grad:
        raise RuntimeError("backward() called on a tensor that does not require grad")
    if seed is None:
        if root.size != 1:
            raise RuntimeError("grad must be supplied for non-scalar outputs")
        seed = Tensor(np.ones_like(root.data))
    elif not isinstance(seed, Tensor):
        seed = Tensor(np.asarray(seed, dtype=_GRAD_DTYPE))

    ctx = enable_grad() if create_graph else no_grad()
    grads: dict[int, Tensor] = {id(root): seed}
    by_id: dict[int, Tensor] = {id(root): root}
    with ctx:
        for node in reversed(_topo_order(root)):
            g = grads.get(id(node))
            if g is None or node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None or not parent.requires_grad:
                    continue
                pid = id(parent)
                by_id[pid] = parent
                if pid in grads:
                    grads[pid] = grads[pid] + pg  # uses the add op
                else:
                    grads[pid] = pg
    return {by_id[k]: v for k, v in grads.items()}


def grad(
    output: Tensor,
    inputs: Sequence[Tensor],
    grad_output: Optional[Tensor] = None,
    create_graph: bool = False,
    allow_unused: bool = True,
) -> tuple[Tensor, ...]:
    """Functional gradient: d(output)/d(inputs) without touching ``.grad``.

    Returns one tensor per input.  Inputs that the output does not depend on
    get a zeros tensor when ``allow_unused`` (the default), otherwise a
    ``RuntimeError`` is raised.
    """
    grads = _run_backward(output, grad_output, create_graph)
    out: list[Tensor] = []
    for inp in inputs:
        g = grads.get(inp)
        if g is None:
            if not allow_unused:
                raise RuntimeError("one of the inputs is unused in the graph")
            g = Tensor(np.zeros_like(inp.data))
        out.append(g)
    return tuple(out)


def make_op(
    data: np.ndarray,
    parents: Iterable[Tensor],
    backward_fn: Callable,
    op: str,
    launches: int = 1,
    attrs: Optional[dict] = None,
) -> Tensor:
    """Create the result tensor of a primitive op.

    Records ``launches`` kernel launches (fused kernels pass 1 even though
    they may issue several numpy calls internally) and wires the graph edge
    if grad mode is on and any parent requires grad.  ``attrs`` carries the
    op's static parameters (index arrays, reduction axes, boolean masks ...)
    for the tape compiler; while a graph-hungry sink is installed
    (:func:`repro.autograd.instrument.graph_wanted`) the edge is wired even
    for ops whose inputs do not require grad, so a recorded tape exposes the
    complete forward dataflow.  The extra wiring never changes ``backward``
    results: gradient traversal only follows parents that require grad.
    """
    parents = tuple(parents)
    nb = data.nbytes // max(launches, 1)
    if _instrument._WANT_SHAPES:
        # a profiler is live somewhere: forward the shapes it needs for
        # FLOP estimation (the common path skips the tuple build entirely)
        in_shapes = tuple(p.data.shape for p in parents)
        for _ in range(launches):
            record_launch(op, nb, data.shape, in_shapes)
    else:
        for _ in range(launches):
            record_launch(op, nb)
    rg = config.grad_enabled and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=rg)
    out._op = op  # kept even without a graph edge (sanitizer attribution)
    out._attrs = attrs
    if rg or _instrument._WANT_GRAPH:
        out._parents = parents
        out._backward_fn = backward_fn
    if _instrument._WANT_TENSORS:
        # a tape recorder or sanitizer is live somewhere: hand it the
        # result tensor (graph edge included) for tape/NaN analysis
        _instrument.record_tensor(out)
    return out


def as_tensor(x: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce scalars/arrays to constant tensors (pass tensors through)."""
    if isinstance(x, Tensor):
        return x
    return Tensor(np.asarray(x, dtype=_GRAD_DTYPE))
