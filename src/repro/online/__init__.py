"""repro.online -- closed-loop online learning against live traffic.

The paper's headline claim -- one DeePMD model trained in minutes -- is
a *step towards online learning*: training fast enough that the model
improving and the model serving are the same running system.  This
package closes that loop.  The four phases that
:class:`repro.train.ActiveLearner` runs as sequential batch rounds
(explore -> select -> label -> train) become concurrent stages connected
by bounded queues, wrapped around a live
:class:`repro.serve.InferenceService`:

    learner = OnlineLearner(ensemble, reference, species, masses, cell,
                            holdout=test_set, service=service)
    result = learner.run(start_positions)   # explore/gate/label/train/swap
    learner.save_state("ckpt/")             # pause ...
    learner.load_state("ckpt/")             # ... and resume bit-exactly

Stage objects (:class:`Explorer`, :class:`UncertaintyGate`,
:class:`Labeler`, :class:`IncrementalTrainer`) are shared with the
batch driver -- same code, two schedules.
"""

from .ledger import LabelLedger, SwapRecord
from .loop import OnlineConfig, OnlineLearner, OnlineResult
from .stages import (
    Explorer,
    GateDecision,
    IncrementalTrainer,
    Labeler,
    UncertaintyGate,
)

__all__ = [
    "OnlineConfig",
    "OnlineLearner",
    "OnlineResult",
    "Explorer",
    "GateDecision",
    "UncertaintyGate",
    "Labeler",
    "IncrementalTrainer",
    "LabelLedger",
    "SwapRecord",
]
