"""The four stages of the explore -> gate -> label -> train loop.

``repro.train.active`` used to hold all four phases inline in one
monolithic ``run_round``; they now live here as free-standing stage
objects so the *same* code runs in two harnesses:

* the batch :class:`~repro.train.ActiveLearner` drives them
  synchronously, one round at a time (bit-identical to the pre-refactor
  loop -- the regression tests replay the old monolithic code against
  the stage composition);
* the concurrent :class:`~repro.online.OnlineLearner` runs each stage on
  its own thread, connected by bounded queues, against a *live*
  :class:`~repro.serve.InferenceService`.

Every stage is deliberately free of threads, queues, and telemetry --
those belong to the driver.  A stage is a plain callable over arrays and
datasets, which is what makes the two drivers equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..md.cell import Cell
from ..md.integrator import LangevinIntegrator
from ..md.potentials import Potential
from ..model.calculator import DeePMDCalculator
from ..model.ensemble import ModelEnsemble
from ..model.network import DeePMD
from ..model.session import InferenceSession
from ..optim.ekf import FEKF
from ..optim.kalman import KalmanConfig

__all__ = [
    "Explorer",
    "GateDecision",
    "UncertaintyGate",
    "Labeler",
    "IncrementalTrainer",
]


class Explorer:
    """MD exploration with the NNMD surrogate.

    Drives :class:`LangevinIntegrator` with a
    :class:`DeePMDCalculator` wrapping ``model`` and samples candidate
    frames every ``sample_every`` steps.  The surrogate model object is
    held by reference: the batch driver hands in the live ensemble
    member (exploration always uses the freshest weights), while the
    concurrent driver hands in a private copy and refreshes it at
    segment boundaries via :meth:`refresh` -- MD must never read weights
    mid-mutation.
    """

    def __init__(
        self,
        model: DeePMD,
        species: np.ndarray,
        masses: np.ndarray,
        cell: Cell,
        *,
        md_steps: int = 120,
        sample_every: int = 10,
        timestep_fs: float = 2.0,
        friction: float = 0.02,
        rng: np.random.Generator,
    ):
        self.model = model
        self.species = np.asarray(species, dtype=np.int64)
        self.masses = np.asarray(masses, dtype=np.float64)
        self.cell = cell
        self.md_steps = int(md_steps)
        self.sample_every = int(sample_every)
        self.timestep_fs = float(timestep_fs)
        self.friction = float(friction)
        self.rng = rng

    @property
    def frames_per_segment(self) -> int:
        return self.md_steps // self.sample_every

    def explore(self, start: np.ndarray, temperature: float) -> np.ndarray:
        """One exploration segment from ``start``; returns (C, N, 3)."""
        calc = DeePMDCalculator(self.model, self.species)
        integ = LangevinIntegrator(
            calc, self.masses, self.cell,
            timestep=self.timestep_fs, temperature=temperature,
            friction=self.friction, rng=self.rng,
        )
        state = integ.initialize(start, temp=temperature)
        _, frames = integ.sample_frames(state, self.md_steps, self.sample_every)
        return frames

    def refresh(self, state: dict) -> None:
        """Load new surrogate weights (the concurrent driver's private
        walker copy follows the served model at segment boundaries)."""
        self.model.load_state_dict(state)


@dataclass
class GateDecision:
    """What the uncertainty gate decided about one candidate batch."""

    #: frames admitted to labeling (S, N, 3)
    selected: np.ndarray
    #: max force deviation of every candidate (C,)
    deviations: np.ndarray
    #: candidate indices of the selected frames
    kept: np.ndarray
    mean_deviation: float
    #: model versions that scored this batch (a singleton set unless the
    #: scorer violated single-version batching)
    versions: frozenset

    @property
    def n_candidates(self) -> int:
        return len(self.deviations)

    @property
    def n_selected(self) -> int:
        return len(self.kept)

    @property
    def labels_avoided(self) -> int:
        """Reference evaluations the gate saved on this batch."""
        return self.n_candidates - self.n_selected

    @property
    def mixed_version(self) -> bool:
        return len(self.versions) > 1


class UncertaintyGate:
    """Trust-band selection on the ensemble's max force deviation.

    ``scorer`` is any :class:`InferenceSession` whose predictions carry
    ``max_force_dev`` -- the bare :class:`ModelEnsemble` in the batch
    loop, a live :class:`repro.serve.InferenceService` wrapping it in
    the online loop.  Candidates below ``lo`` are already learned,
    candidates above ``hi`` come from trajectories too wrong to trust;
    at most ``max_new_frames`` survive, highest deviation first.
    """

    def __init__(
        self,
        scorer: InferenceSession,
        species: np.ndarray,
        cell: Cell,
        *,
        lo: float = 0.05,
        hi: float = 1.0,
        max_new_frames: int = 16,
    ):
        self.scorer = scorer
        self.species = np.asarray(species, dtype=np.int64)
        self.cell = cell
        self.lo = float(lo)
        self.hi = float(hi)
        self.max_new_frames = int(max_new_frames)

    def select(self, frames: np.ndarray) -> GateDecision:
        preds = self.scorer.predict_many(frames, self.species, self.cell)
        if any(p.max_force_dev is None for p in preds):
            raise TypeError(
                "gate scorer predictions carry no max_force_dev; wrap an "
                "ensemble-backed session"
            )
        devs = np.array([p.max_force_dev for p in preds], dtype=np.float64)
        keep = (devs > self.lo) & (devs < self.hi)
        chosen = np.where(keep)[0]
        if len(chosen) > self.max_new_frames:
            order = np.argsort(-devs[chosen])
            chosen = chosen[order[: self.max_new_frames]]
        return GateDecision(
            selected=frames[chosen],
            deviations=devs,
            kept=chosen,
            mean_deviation=float(devs.mean()),
            versions=frozenset(p.model_version for p in preds),
        )


class Labeler:
    """Reference-potential labeling (the ab-initio stand-in)."""

    def __init__(self, reference: Potential, species: np.ndarray, cell: Cell):
        self.reference = reference
        self.species = np.asarray(species, dtype=np.int64)
        self.cell = cell

    def label(self, frames: np.ndarray, temperature: float) -> Dataset:
        energies = np.empty(len(frames))
        forces = np.empty_like(frames)
        for t, pos in enumerate(frames):
            energies[t], forces[t] = self.reference.energy_forces(pos, self.cell)
        return Dataset(
            name="active",
            positions=frames,
            energies=energies,
            forces=forces,
            species=self.species,
            cell=self.cell,
            temperatures=np.full(len(frames), temperature),
        )


class IncrementalTrainer:
    """Persistent per-member FEKF filters over an accumulating label set.

    One :class:`FEKF` per committee member, constructed once and reused
    across every round -- the filter's P matrix is where minutes-scale
    convergence lives, so it must never be rebuilt mid-loop.  The
    training epochs themselves run through the standard
    :class:`~repro.train.Trainer`, so compiled step engines, callbacks
    and telemetry all apply unchanged.

    The label pool lives in one of two places: the historical in-memory
    :class:`Dataset` (``labeled``), or -- when ``label_store`` is given
    -- a live :class:`~repro.data.framestore.ShardedFrameStore` that
    every admitted segment is appended into.  A store-backed pool is
    durable across crashes and never rebinds the corpus size to RAM,
    which is what an unbounded label stream needs; :attr:`pool` is the
    uniform :class:`~repro.data.source.FrameSource` view training reads
    either way.
    """

    def __init__(
        self,
        ensemble: ModelEnsemble,
        *,
        kalman_cfg: KalmanConfig | None = None,
        batch_size: int = 4,
        epochs_per_round: int = 3,
        seed: int = 0,
        compiled: bool | None = None,
        label_store=None,
    ):
        self.ensemble = ensemble
        self.batch_size = int(batch_size)
        self.epochs_per_round = int(epochs_per_round)
        kcfg = kalman_cfg or KalmanConfig(blocksize=2048, fused_update=True)
        #: one persistent filter per committee member
        self.optimizers = [
            FEKF(
                m, KalmanConfig(**vars(kcfg)), fused_env=True,
                seed=seed + k, compiled=compiled,
            )
            for k, m in enumerate(ensemble.models)
        ]
        self.labeled: Dataset | None = None
        #: live append target for labeled frames (out-of-core pool)
        self.label_store = label_store

    # ------------------------------------------------------------------
    @property
    def pool(self):
        """The accumulated label pool as a frame source (or ``None``)."""
        if self.label_store is not None:
            return self.label_store if self.label_store.n_frames else None
        return self.labeled

    @property
    def pool_frames(self) -> int:
        src = self.pool
        return 0 if src is None else src.n_frames

    def accumulate(self, new: Dataset) -> None:
        """Append newly labeled frames to the training pool."""
        if self.label_store is not None:
            self.label_store.append_dataset(new)
            return
        if self.labeled is None:
            self.labeled = new
            return
        old = self.labeled
        self.labeled = Dataset(
            name="active",
            positions=np.concatenate([old.positions, new.positions]),
            energies=np.concatenate([old.energies, new.energies]),
            forces=np.concatenate([old.forces, new.forces]),
            species=old.species,
            cell=old.cell,
            temperatures=np.concatenate([old.temperatures, new.temperatures]),
        )

    @property
    def ready(self) -> bool:
        """Enough accumulated labels for at least one full minibatch."""
        return self.pool_frames >= self.batch_size

    def train_round(self, seed_offset: int) -> None:
        """Fine-tune every member on the accumulated pool."""
        from ..train.trainer import Trainer  # deferred: train imports stages

        pool = self.pool
        for model, opt in zip(self.ensemble.models, self.optimizers):
            Trainer(
                model, opt, pool, None,
                batch_size=self.batch_size,
                seed=seed_offset + 1,
            ).run(max_epochs=self.epochs_per_round)
