"""Label accounting and swap history for the closed loop.

The economics of active learning is the ratio of reference-potential
calls *made* to reference calls *avoided* by the uncertainty gate; the
progress of online learning is the held-out error at each hot swap.
Both ledgers are plain counters/records here so the harness can put
them straight into a ``repro.bench/v1`` manifest and a resumed loop can
restore them bit-exactly from a checkpoint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..analysis.concurrency import TrackedLock


@dataclass
class SwapRecord:
    """One successful live model swap."""

    #: monotonic model version the service now serves
    version: int
    #: seconds since the loop run started (perf-counter clock)
    wall_s: float
    #: held-out committee force RMSE of the promoted weights
    force_rmse: float
    #: labeled frames the promoted weights had been trained on
    trained_frames: int
    #: training rounds completed when the swap happened
    round_index: int

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "SwapRecord":
        return cls(
            version=int(d["version"]),
            wall_s=float(d["wall_s"]),
            force_rmse=float(d["force_rmse"]),
            trained_frames=int(d["trained_frames"]),
            round_index=int(d["round_index"]),
        )


class LabelLedger:
    """Thread-safe labels-requested / labels-avoided accounting.

    Updated by the gate and labeler stages from their own threads;
    snapshot with :meth:`as_dict`.  Equality compares the counter values
    (what the crash-resume certification asserts on).
    """

    _FIELDS = (
        "candidates", "requested", "labeled", "avoided",
        "segments", "gate_errors", "mixed_version_batches",
    )

    def __init__(self):
        self._lock = TrackedLock("online.ledger")
        for name in self._FIELDS:
            setattr(self, name, 0)

    # ------------------------------------------------------------------
    def record_gate(self, decision) -> None:
        """Account one :class:`~repro.online.GateDecision`."""
        with self._lock:
            self.segments += 1
            self.candidates += decision.n_candidates
            self.requested += decision.n_selected
            self.avoided += decision.labels_avoided
            if decision.mixed_version:
                self.mixed_version_batches += 1

    def record_labels(self, n: int) -> None:
        with self._lock:
            self.labeled += int(n)

    def record_gate_error(self) -> None:
        with self._lock:
            self.gate_errors += 1

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        with self._lock:
            return {name: int(getattr(self, name)) for name in self._FIELDS}

    def load_dict(self, d: dict) -> None:
        with self._lock:
            for name in self._FIELDS:
                setattr(self, name, int(d.get(name, 0)))

    def __eq__(self, other) -> bool:
        if not isinstance(other, LabelLedger):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"LabelLedger({pairs})"
