"""The concurrent closed loop: explore -> gate -> label -> train -> swap.

:class:`OnlineLearner` wires the four :mod:`repro.online.stages` onto
their own threads, connected by bounded queues
(:class:`~repro.serve.BoundedWorkQueue`), around a *live*
:class:`~repro.serve.InferenceService`:

* the **explorer** walks MD with a private copy of the served surrogate
  and streams candidate frames downstream;
* the **gate** scores each segment's uncertainty through the service
  itself (the same server answering external traffic -- gate decisions
  are just more requests in the micro-batcher);
* the **labeler** runs the reference potential over admitted frames;
* the **trainer** folds the label stream into persistent per-member
  FEKF filters and, when the candidate weights beat the served weights
  on held-out force RMSE, hot-swaps them into the service without
  stopping it.

The promotion gate is what makes the served error *monotone*: a swap
happens only on measured improvement, so the force-RMSE-vs-wall-clock
curve recorded in :class:`SwapRecord` entries decreases by
construction.

``pause`` / ``save_state`` / ``load_state`` make the whole loop a
resumable object: filters (P matrices and PCG64 streams), the label
pool, ledgers, the MD walker state, and the served model version all
round-trip bit-exactly through a checkpoint directory.
"""

from __future__ import annotations

import copy
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..analysis.concurrency import Guarded, TrackedLock
from ..data.dataset import Dataset
from ..data.store import read_npz, write_npz
from ..md.cell import Cell
from ..model.ensemble import ModelEnsemble
from ..md.potentials import Potential
from ..optim.base import load_ensemble_state, save_ensemble_state
from ..optim.kalman import KalmanConfig
from ..serve import BoundedWorkQueue, InferenceService, ServeConfig, ServeError
from ..telemetry.monitor import HeartbeatRegistry
from ..telemetry.trace import Tracer, current_tracer, span as _span
from .ledger import LabelLedger, SwapRecord
from .stages import Explorer, IncrementalTrainer, Labeler, UncertaintyGate

__all__ = ["OnlineConfig", "OnlineLearner", "OnlineResult"]

#: queue poll interval while also watching the stop event
_POLL_S = 0.05


@dataclass
class OnlineConfig:
    """Knobs of the concurrent loop (superset of the batch round knobs)."""

    # -- exploration ---------------------------------------------------
    #: MD steps per exploration segment
    md_steps: int = 60
    #: candidate sampling stride within a segment
    sample_every: int = 10
    timestep_fs: float = 2.0
    friction: float = 0.02
    temperature: float = 300.0

    # -- uncertainty gate ----------------------------------------------
    #: trust-band bounds on max force deviation (eV/A)
    select_lo: float = 0.05
    select_hi: float = 1.0
    #: labeling budget per gated segment
    max_new_frames: int = 16

    # -- incremental training ------------------------------------------
    batch_size: int = 4
    epochs_per_round: int = 3
    #: reuse tape-compiled FEKF step engines where signatures repeat
    compiled: Optional[bool] = None

    # -- loop control --------------------------------------------------
    #: stop once this many live swaps succeeded (None: run to segment
    #: budget)
    target_swaps: Optional[int] = 3
    #: exploration segments per :meth:`OnlineLearner.run` call
    max_segments: int = 64
    #: capacity of each inter-stage queue (backpressure bound)
    queue_capacity: int = 4
    #: frames sampled from the holdout set for the promotion gate
    eval_frames: int = 32

    # -- serving -------------------------------------------------------
    #: service configuration when the learner owns the service; ignored
    #: when one is injected
    serve: Optional[ServeConfig] = None


@dataclass
class OnlineResult:
    """What one :meth:`OnlineLearner.run` call accomplished."""

    #: swaps promoted during this run (cumulative list lives on the learner)
    swaps: list = field(default_factory=list)
    #: ledger snapshot at the end of the run
    ledger: dict = field(default_factory=dict)
    #: training rounds completed over the learner's lifetime
    trained_rounds: int = 0
    #: held-out force RMSE currently served
    served_rmse: float = float("nan")
    #: exploration segments walked over the learner's lifetime
    segments: int = 0

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)


class OnlineLearner:
    """Closed-loop online learning against a live inference service.

    Parameters mirror :class:`~repro.train.ActiveLearner` -- same
    ensemble/reference/system geometry, same warm start on
    ``initial_data`` -- plus a ``holdout`` dataset that feeds the swap
    promotion gate and an optional externally-owned ``service``.
    """

    def __init__(
        self,
        ensemble: ModelEnsemble,
        reference: Potential,
        species: np.ndarray,
        masses: np.ndarray,
        cell: Cell,
        cfg: Optional[OnlineConfig] = None,
        kalman_cfg: Optional[KalmanConfig] = None,
        initial_data: Optional[Dataset] = None,
        holdout: Optional[Dataset] = None,
        seed: int = 0,
        service: Optional[InferenceService] = None,
        label_store=None,
    ):
        self.ensemble = ensemble
        self.cfg = cfg or OnlineConfig()
        self.holdout = holdout
        self.seed = int(seed)

        # the serving surface: injected, or owned (started lazily in run)
        self._owns_service = service is None
        if service is None:
            frames = max(1, self.cfg.md_steps // self.cfg.sample_every)
            serve_cfg = self.cfg.serve or ServeConfig(
                # one exploration segment co-batches into one micro-batch,
                # so every gate decision is single-version by construction
                max_batch=frames,
                max_delay_s=0.005,
                max_queue=max(64, 4 * frames),
            )
            service = InferenceService(ensemble, serve_cfg)
        self.service = service

        # the explorer walks a private copy of member 0 -- the trainer
        # mutates the live ensemble in place, and MD must never read
        # weights mid-mutation; promoted weights arrive via a mailbox
        self._walker_model = copy.deepcopy(ensemble.models[0])
        self._rng = np.random.default_rng(seed)
        self.explorer = Explorer(
            self._walker_model, species, masses, cell,
            md_steps=self.cfg.md_steps,
            sample_every=self.cfg.sample_every,
            timestep_fs=self.cfg.timestep_fs,
            friction=self.cfg.friction,
            rng=self._rng,
        )
        self.gate = UncertaintyGate(
            self.service, species, cell,
            lo=self.cfg.select_lo, hi=self.cfg.select_hi,
            max_new_frames=self.cfg.max_new_frames,
        )
        self.labeler = Labeler(reference, species, cell)
        # an optional live ShardedFrameStore: every admitted segment is
        # appended durably, and training rounds read straight from it --
        # the label pool outlives the process and never has to fit RAM
        self.trainer = IncrementalTrainer(
            ensemble,
            kalman_cfg=kalman_cfg,
            batch_size=self.cfg.batch_size,
            epochs_per_round=self.cfg.epochs_per_round,
            seed=seed,
            compiled=self.cfg.compiled,
            label_store=label_store,
        )

        # loop state (all of it checkpointed)
        self.ledger = LabelLedger()
        self.swaps: list[SwapRecord] = []
        self.trained_rounds = 0
        self.segments = 0
        self.served_rmse = float("inf")
        self._wall_base = 0.0
        self._start_pos: Optional[np.ndarray] = None

        # cross-thread plumbing
        self._stop = threading.Event()
        self._walker_lock = TrackedLock("online.walker")
        self._walker_mailbox: Guarded = Guarded(
            None, self._walker_lock, name="online.walker_mailbox"
        )
        #: guards the progress counters and RMSE fields shared between
        #: run()'s calling thread and the stage threads
        self._state_lock = TrackedLock("online.state")
        self._trainer_error: Optional[BaseException] = None

        # health plane: per-stage liveness beacons plus the live queue
        # handles / progress clock that health() reports on
        self.heartbeats = HeartbeatRegistry()
        self._queues: tuple = ()
        self._best_rmse = float("inf")
        self._progress_t: Optional[float] = None

        if initial_data is not None:
            self.trainer.accumulate(initial_data)
            self.trainer.train_round(seed_offset=-1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_service:
            self.service.stop()

    def __enter__(self) -> "OnlineLearner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def pause(self) -> None:
        """Ask a running loop to stop at the next stage boundary."""
        self._stop.set()

    # ------------------------------------------------------------------
    # the concurrent loop
    # ------------------------------------------------------------------
    def run(
        self,
        start: Optional[np.ndarray] = None,
        *,
        target_swaps: Optional[int] = None,
        max_segments: Optional[int] = None,
        temperature: Optional[float] = None,
    ) -> OnlineResult:
        """Run the pipeline until ``target_swaps`` live swaps succeeded,
        the segment budget is exhausted, or :meth:`pause` is called.

        Four stage threads run concurrently; this thread coordinates,
        joins them, and merges their telemetry into the ambient tracer.
        Re-entrant: a paused/resumed learner continues from its walker
        position and counters.
        """
        if start is not None:
            with self._state_lock:
                self._start_pos = np.asarray(start, dtype=np.float64).copy()
        if self._start_pos is None:
            raise ValueError("no start positions: pass `start` on the first run")
        target = self.cfg.target_swaps if target_swaps is None else target_swaps
        budget = self.cfg.max_segments if max_segments is None else max_segments
        temp = self.cfg.temperature if temperature is None else float(temperature)

        self.service.start()
        if not np.isfinite(self.served_rmse):
            rmse0 = self._holdout_rmse()  # evaluate outside the lock
            with self._state_lock:
                self.served_rmse = rmse0
        with self._state_lock:
            self._best_rmse = min(self._best_rmse, self.served_rmse)
            self._trainer_error = None
            self._progress_t = time.monotonic()
        self._stop.clear()
        self._t0 = time.perf_counter()
        swaps_before = len(self.swaps)

        cap = self.cfg.queue_capacity
        cand_q = BoundedWorkQueue(cap, name="online candidates")
        label_q = BoundedWorkQueue(cap, name="online label queue")
        train_q = BoundedWorkQueue(cap, name="online train queue")
        self._queues = (cand_q, label_q, train_q)

        ambient = current_tracer()
        stages = [
            ("explore", self._explore_loop, (cand_q, budget, temp)),
            ("gate", self._gate_loop, (cand_q, label_q)),
            ("label", self._label_loop, (label_q, train_q, temp)),
            ("train", self._train_loop, (train_q, target, swaps_before)),
        ]
        threads, tracers = [], []
        for name, body, args in stages:
            tracer = Tracer(keep_events=True) if ambient is not None else None
            tracers.append((name, tracer))
            t = threading.Thread(
                target=self._stage_main,
                args=(f"online-{name}", tracer, body, args),
                name=f"online-{name}", daemon=True,
            )
            # register before start so a stage that dies instantly is
            # still seen (dead thread, not an unknown name)
            self.heartbeats.register(f"online-{name}", thread=t)
            threads.append(t)
            t.start()
        for t in threads:
            t.join()
        if ambient is not None:
            for name, tracer in tracers:
                ambient.adopt(tracer, thread=f"online-{name}")
        self._wall_base += time.perf_counter() - self._t0
        if self._trainer_error is not None:
            raise self._trainer_error
        return OnlineResult(
            swaps=list(self.swaps[swaps_before:]),
            ledger=self.ledger.as_dict(),
            trained_rounds=self.trained_rounds,
            served_rmse=self.served_rmse,
            segments=self.segments,
        )

    # ------------------------------------------------------------------
    # stage thread bodies
    # ------------------------------------------------------------------
    def _stage_main(self, name: str, tracer: Optional[Tracer], body, args) -> None:
        try:
            if tracer is None:
                body(*args)
            else:
                with tracer:
                    body(*args)
        finally:
            # clean exit: a joined stage thread is not a corpse
            self.heartbeats.done(name)

    def _explore_loop(self, cand_q: BoundedWorkQueue, budget: int, temp: float) -> None:
        try:
            pos = self._start_pos
            for _ in range(budget):
                self.heartbeats.beat("online-explore")
                if self._stop.is_set():
                    break
                with self._walker_lock:
                    promoted = self._walker_mailbox.swap(None)
                if promoted is not None:
                    self.explorer.refresh(promoted)
                with _span("online.explore", segment=self.segments):
                    frames = self.explorer.explore(pos, temp)
                if frames.size == 0:
                    break
                pos = frames[-1].copy()
                with self._state_lock:
                    self._start_pos = pos
                    self.segments += 1
                while not self._stop.is_set():
                    self.heartbeats.beat("online-explore")
                    if cand_q.put(frames, timeout=_POLL_S, stop=self._stop):
                        break
        finally:
            cand_q.close()

    def _gate_loop(self, cand_q: BoundedWorkQueue, label_q: BoundedWorkQueue) -> None:
        try:
            for frames in self._drain(cand_q, "online-gate"):
                try:
                    with _span("online.gate", candidates=len(frames)):
                        decision = self.gate.select(frames)
                except ServeError:
                    self.ledger.record_gate_error()
                    continue
                self.ledger.record_gate(decision)
                if decision.n_selected == 0:
                    continue
                self._put(label_q, decision.selected, "online-gate")
        finally:
            label_q.close()

    def _label_loop(
        self, label_q: BoundedWorkQueue, train_q: BoundedWorkQueue, temp: float
    ) -> None:
        try:
            for frames in self._drain(label_q, "online-label"):
                with _span("online.label", frames=len(frames)):
                    labeled = self.labeler.label(frames, temp)
                self.ledger.record_labels(labeled.n_frames)
                self._put(train_q, labeled, "online-label")
        finally:
            train_q.close()

    def _train_loop(
        self, train_q: BoundedWorkQueue, target: Optional[int], swaps_before: int
    ) -> None:
        try:
            for labeled in self._drain(train_q, "online-train"):
                self.trainer.accumulate(labeled)
                if not self.trainer.ready:
                    continue
                with _span("online.train", round=self.trained_rounds):
                    self.trainer.train_round(seed_offset=self.trained_rounds)
                with self._state_lock:
                    self.trained_rounds += 1
                rmse = self._holdout_rmse()
                if rmse < self.served_rmse:
                    self._promote(rmse)
                    if (
                        target is not None
                        and len(self.swaps) - swaps_before >= target
                    ):
                        self._stop.set()
                        return
        except BaseException as exc:  # surfaced by run() after join
            with self._state_lock:
                self._trainer_error = exc
            self._stop.set()

    # ------------------------------------------------------------------
    def _drain(self, q: BoundedWorkQueue, name: Optional[str] = None):
        """Yield items until the queue is closed+empty or the loop stops."""
        while True:
            if name is not None:
                self.heartbeats.beat(name)
            item = q.get(timeout=_POLL_S, stop=self._stop)
            if item is not None:
                yield item
                continue
            if self._stop.is_set() or q.drained():
                return

    def _put(self, q: BoundedWorkQueue, item, name: Optional[str] = None) -> None:
        while not self._stop.is_set():
            if name is not None:
                self.heartbeats.beat(name)
            if q.put(item, timeout=_POLL_S, stop=self._stop):
                return

    def _holdout_rmse(self) -> float:
        if self.holdout is None:
            dataset = self.trainer.pool
            if dataset is None:
                return float("inf")
        else:
            dataset = self.holdout
        with _span("online.evaluate"):
            scores = self.ensemble.evaluate_rmse(
                dataset, max_frames=self.cfg.eval_frames
            )
        return scores["force_rmse"]

    def _promote(self, rmse: float) -> None:
        """Hot-swap the improved weights into the live service."""
        state = self.ensemble.state_dicts()  # deep per-member copies
        with _span("online.swap", rmse=rmse):
            version = self.service.swap(state)
        with self._walker_lock:
            self._walker_mailbox.set(state[0])
        with self._state_lock:
            self.served_rmse = rmse
            self._best_rmse = min(self._best_rmse, rmse)
            self._progress_t = time.monotonic()
        self.swaps.append(
            SwapRecord(
                version=version,
                wall_s=self._wall_base + time.perf_counter() - self._t0,
                force_rmse=rmse,
                trained_frames=self.trainer.pool_frames,
                round_index=self.trained_rounds,
            )
        )

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Live health sample for the runtime monitor.

        The stock online SLO rules
        (:func:`repro.telemetry.monitor.default_online_rules`) read the
        stage heartbeats (stall/dead-thread watchdog), the served-vs-best
        RMSE pair (non-regression: the promotion gate makes regressions
        impossible, so any positive delta is a real bug), and the swap
        staleness clock (seconds since the last promotion or run start).
        """
        with self._state_lock:  # a coherent progress sample, not torn
            progress = {
                "segments": self.segments,
                "trained_rounds": self.trained_rounds,
                "served_rmse": self.served_rmse,
                "best_rmse": self._best_rmse,
                "swap_age_s": (
                    None if self._progress_t is None
                    else time.monotonic() - self._progress_t
                ),
            }
        return {
            **progress,
            "swaps": len(self.swaps),
            "queues": {q.name: q.stats() for q in self._queues},
            "heartbeats": self.heartbeats.ages(),
        }

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def save_state(self, path: str) -> None:
        """Checkpoint everything needed for a bit-exact resume.

        Members + FEKF filters (P matrices, PCG64 streams) go into one
        npz; the label pool into the dataset store; counters, ledger,
        swap history, walker RNG/positions, and the served model version
        into a JSON sidecar.
        """
        os.makedirs(path, exist_ok=True)
        save_ensemble_state(
            os.path.join(path, "members.npz"),
            self.ensemble.models,
            self.trainer.optimizers,
        )
        np.savez(
            os.path.join(path, "walker.npz"),
            start_pos=self._start_pos
            if self._start_pos is not None
            else np.empty((0, 3)),
            **{f"model/{k}": v for k, v in self._walker_model.state_dict().items()},
        )
        if self.trainer.label_store is not None:
            # the store IS the durable pool: flush it and record its
            # identity so resume can verify the pool matches the filters
            self.trainer.label_store.flush()
            label_pool = {
                "store_path": self.trainer.label_store.path,
                "store_frames": self.trainer.label_store.n_frames,
                "store_fingerprint": self.trainer.label_store.fingerprint(),
            }
        else:
            label_pool = None
            if self.trainer.labeled is not None:
                write_npz(self.trainer.labeled, os.path.join(path, "labeled.npz"))
        meta = {
            "label_pool": label_pool,
            "ledger": self.ledger.as_dict(),
            "swaps": [s.as_dict() for s in self.swaps],
            "trained_rounds": self.trained_rounds,
            "segments": self.segments,
            "served_rmse": self.served_rmse,
            "wall_base": self._wall_base,
            "model_version": self.service.model_version,
            "rng_state": self._rng.bit_generator.state,
        }
        with open(os.path.join(path, "online.json"), "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)

    def load_state(self, path: str) -> None:
        """Restore a checkpoint written by :meth:`save_state`."""
        load_ensemble_state(
            os.path.join(path, "members.npz"),
            self.ensemble.models,
            self.trainer.optimizers,
        )
        with np.load(os.path.join(path, "walker.npz")) as z:
            start = z["start_pos"]
            with self._state_lock:
                self._start_pos = start.copy() if start.size else None
            walker = {
                k[len("model/"):]: z[k] for k in z.files if k.startswith("model/")
            }
        if walker:
            self._walker_model.load_state_dict(walker)
        with self._walker_lock:
            self._walker_mailbox.set(None)
        with open(os.path.join(path, "online.json")) as fh:
            meta = json.load(fh)
        pool_meta = meta.get("label_pool")
        if self.trainer.label_store is not None:
            # the filters in this checkpoint were trained on exactly the
            # recorded pool; a store that has since diverged would break
            # the bit-exact-resume contract, so fail loudly instead
            if pool_meta is None:
                raise ValueError(
                    "checkpoint has an npz label pool but the learner is "
                    "store-backed; resume without label_store"
                )
            store = self.trainer.label_store
            if (
                store.n_frames != int(pool_meta["store_frames"])
                or store.fingerprint() != pool_meta["store_fingerprint"]
            ):
                raise ValueError(
                    f"label store at {store.path} does not match the "
                    f"checkpoint (expected {pool_meta['store_frames']} "
                    f"frames, fingerprint {pool_meta['store_fingerprint'][:12]}...)"
                )
        else:
            labeled_path = os.path.join(path, "labeled.npz")
            self.trainer.labeled = (
                read_npz(labeled_path) if os.path.exists(labeled_path) else None
            )
        self.ledger.load_dict(meta["ledger"])
        self.swaps = [SwapRecord.from_dict(d) for d in meta["swaps"]]
        with self._state_lock:
            self.trained_rounds = int(meta["trained_rounds"])
            self.segments = int(meta["segments"])
            self.served_rmse = float(meta["served_rmse"])
        self._wall_base = float(meta["wall_base"])
        self._rng.bit_generator.state = meta["rng_state"]
        self.service.restore_version(int(meta["model_version"]))
