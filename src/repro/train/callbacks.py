"""Trainer event API: callbacks driven by the training loop.

``Trainer.run(callbacks=[...])`` replaces the old inline ``verbose``
printing with an extensible event stream:

* ``on_train_begin(trainer)`` -- once, before the first batch;
* ``on_step_end(StepInfo)`` -- after every optimizer step;
* ``on_eval(EpochRecord)`` -- after *every* RMSE evaluation, including
  the fractional mid-epoch ones;
* ``on_epoch_end(EpochRecord)`` -- after each end-of-epoch evaluation
  (the events the old ``verbose=True`` printed);
* ``on_train_end(TrainResult)`` -- once, after the loop exits.

``verbose=True`` remains supported as a shim that appends a
:class:`ConsoleCallback`.  The loop itself is instrumented with
:mod:`repro.telemetry` spans (``train.step`` / ``train.eval``), so
callbacks are for *reacting* to training (logging, early stopping hooks,
streaming dashboards) while telemetry is for *measuring* it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TextIO

if TYPE_CHECKING:  # avoid a runtime cycle with trainer.py
    from .trainer import EpochRecord, Trainer, TrainResult

__all__ = ["StepInfo", "Callback", "ConsoleCallback", "JsonlCallback"]


@dataclass
class StepInfo:
    """What ``on_step_end`` receives about one optimizer step."""

    epoch: int
    batch_index: int
    n_batches: int
    #: seconds spent inside ``optimizer.step_batch`` for this batch
    step_seconds: float
    #: the optimizer's own per-batch diagnostics (``step_batch`` return)
    stats: dict


class Callback:
    """Base class: override any subset of the hooks (all default no-op)."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        pass

    def on_step_end(self, info: StepInfo) -> None:
        pass

    def on_eval(self, record: "EpochRecord") -> None:
        pass

    def on_epoch_end(self, record: "EpochRecord") -> None:
        pass

    def on_train_end(self, result: "TrainResult") -> None:
        pass


class ConsoleCallback(Callback):
    """The old ``verbose=True`` behaviour, as a callback."""

    def __init__(self, printer: Callable[[str], None] = print):
        self.printer = printer

    def on_epoch_end(self, record: "EpochRecord") -> None:
        epoch = (
            f"{record.epoch:4.0f}"
            if float(record.epoch).is_integer()
            else f"{record.epoch:6.2f}"
        )
        self.printer(
            f"epoch {epoch}  train E/F rmse "
            f"{record.train_energy_rmse:.5f}/{record.train_force_rmse:.5f}  "
            f"test {record.test_energy_rmse:.5f}/{record.test_force_rmse:.5f}"
        )


class JsonlCallback(Callback):
    """Stream every evaluation record as one JSON line (machine logs)."""

    def __init__(self, stream: TextIO):
        self.stream = stream

    def on_eval(self, record: "EpochRecord") -> None:
        import json

        self.stream.write(
            json.dumps(
                {
                    "type": "eval",
                    "epoch": record.epoch,
                    "train_energy_rmse": record.train_energy_rmse,
                    "train_force_rmse": record.train_force_rmse,
                    "test_energy_rmse": record.test_energy_rmse,
                    "test_force_rmse": record.test_force_rmse,
                    "wall_time": record.wall_time,
                    "train_time": record.train_time,
                }
            )
            + "\n"
        )
