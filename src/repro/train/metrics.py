"""Training-metrics utilities: curve export and run summaries.

The paper's artifact writes per-epoch ``epoch_train.dat`` files that its
evaluation scripts post-process (Appendix A.4); these helpers provide the
same workflow: dump a :class:`~repro.train.trainer.TrainResult` history to
a dat/csv file, read it back, and compute the epochs-to-error queries the
appendix performs with awk.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .trainer import EpochRecord, TrainResult

_COLUMNS = (
    "epoch",
    "train_energy_rmse",
    "train_force_rmse",
    "test_energy_rmse",
    "test_force_rmse",
    "wall_time",
    "train_time",
)


def write_history(result: TrainResult, path: str) -> None:
    """Write the per-epoch history as a whitespace dat file (paper's
    ``epoch_train.dat`` convention, with a ``#`` header)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        fh.write("# " + " ".join(_COLUMNS) + "\n")
        for r in result.history:
            fh.write(
                f"{r.epoch:.4f} {r.train_energy_rmse:.8f} {r.train_force_rmse:.8f} "
                f"{r.test_energy_rmse:.8f} {r.test_force_rmse:.8f} "
                f"{r.wall_time:.4f} {r.train_time:.4f}\n"
            )


def read_history(path: str) -> TrainResult:
    """Read a file written by :func:`write_history`."""
    data = np.loadtxt(path, comments="#", ndmin=2)
    result = TrainResult()
    for row in data:
        result.history.append(
            EpochRecord(
                epoch=float(row[0]),
                train_energy_rmse=float(row[1]),
                train_force_rmse=float(row[2]),
                test_energy_rmse=float(row[3]),
                test_force_rmse=float(row[4]),
                wall_time=float(row[5]),
                train_time=float(row[6]),
            )
        )
    return result


def epochs_to_error(
    result: TrainResult, target: float, metric: str = "energy", split: str = "train"
) -> Optional[float]:
    """First epoch at which the RMSE drops to ``target`` (the appendix's
    ``process.py epoch_train.dat <rmse>`` query); None if never reached."""
    key = f"{split}_{metric}_rmse"
    for rec in result.history:
        if getattr(rec, key) <= target:
            return rec.epoch
    return None


def summarize(result: TrainResult) -> dict[str, float]:
    """Headline numbers of a run (best/final RMSE, times)."""
    best = min(result.history, key=lambda r: r.train_total)
    final = result.history[-1]
    return {
        "epochs": final.epoch,
        "best_epoch": best.epoch,
        "best_train_total": best.train_total,
        "best_test_total": best.test_total,
        "final_train_total": final.train_total,
        "generalization_gap": abs(best.test_total - best.train_total),
        "train_seconds": result.total_train_time,
        "wall_seconds": result.total_wall_time,
    }
