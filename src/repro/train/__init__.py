"""repro.train -- training loop, convergence targets, metrics."""

from .active import ActiveLearner, ActiveLearningConfig, RoundStats
from .callbacks import Callback, ConsoleCallback, JsonlCallback, StepInfo
from .metrics import epochs_to_error, read_history, summarize, write_history
from .trainer import EpochRecord, TargetCriterion, Trainer, TrainResult

__all__ = [
    "Callback",
    "ConsoleCallback",
    "JsonlCallback",
    "StepInfo",
    "Trainer",
    "TrainResult",
    "EpochRecord",
    "TargetCriterion",
    "ActiveLearner",
    "ActiveLearningConfig",
    "RoundStats",
    "write_history",
    "read_history",
    "epochs_to_error",
    "summarize",
]
