"""repro.train -- training loop, convergence targets, metrics."""

from .active import ActiveLearner, ActiveLearningConfig, RoundStats
from .metrics import epochs_to_error, read_history, summarize, write_history
from .trainer import EpochRecord, TargetCriterion, Trainer, TrainResult

__all__ = [
    "Trainer",
    "TrainResult",
    "EpochRecord",
    "TargetCriterion",
    "ActiveLearner",
    "ActiveLearningConfig",
    "RoundStats",
    "write_history",
    "read_history",
    "epochs_to_error",
    "summarize",
]
