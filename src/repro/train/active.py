"""Concurrent (active) learning: the DP-GEN-style loop the paper's
"online learning" vision points at.

Each round:

1. **explore** -- drive MD with the ensemble's first model (the NNMD
   surrogate) from the current pool of configurations, at the round's
   temperature, collecting candidate frames;
2. **select** -- score candidates by the ensemble's maximum atomic force
   deviation and keep those inside the trust band
   ``lo < dev < hi`` (below lo: already learned; above hi: the surrogate
   is so wrong the trajectory itself is unreliable);
3. **label** -- evaluate the selected frames with the reference potential
   (the ab-initio stand-in);
4. **train** -- fine-tune every ensemble member with its own persistent
   FEKF filter on the accumulated labeled data.

Minutes-scale training (the paper's contribution) is what makes running
this loop dozens of times practical.

The four phases are implemented by the stage objects in
:mod:`repro.online.stages` -- :class:`~repro.online.Explorer`,
:class:`~repro.online.UncertaintyGate`, :class:`~repro.online.Labeler`,
:class:`~repro.online.IncrementalTrainer`.  :class:`ActiveLearner` is
the thin *synchronous* driver over them (one round at a time, in-process
scoring); :class:`repro.online.OnlineLearner` runs the same stages
concurrently against a live :class:`repro.serve.InferenceService`.  The
regression tests hold the two drivers to the same stage semantics --
this batch loop is bit-identical to the pre-decomposition monolith.

Round phases are recorded as telemetry spans (``active.explore`` /
``active.select`` / ``active.label`` / ``active.train``) on a per-round
tracer that merges into the ambient tracer when one is installed --
``RoundStats.train_seconds`` comes from those spans, not from ad-hoc
wall-clock reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..md.cell import Cell
from ..md.potentials import Potential
from ..model.ensemble import ModelEnsemble
from ..model.session import InferenceSession
from ..online.stages import Explorer, IncrementalTrainer, Labeler, UncertaintyGate
from ..optim.kalman import KalmanConfig
from ..telemetry.trace import Tracer, current_tracer


@dataclass
class RoundStats:
    """Diagnostics for one active-learning round."""

    round_index: int
    temperature: float
    n_candidates: int
    n_selected: int
    mean_deviation: float
    train_seconds: float
    rmse_after: float


@dataclass
class ActiveLearningConfig:
    """Knobs of the loop (DP-GEN-flavoured defaults)."""

    #: trust band on the max force deviation (eV/A)
    select_lo: float = 0.05
    select_hi: float = 1.0
    #: MD exploration per round
    md_steps: int = 120
    sample_every: int = 10
    timestep_fs: float = 2.0
    friction: float = 0.02
    #: training per round
    epochs_per_round: int = 3
    batch_size: int = 4
    max_new_frames: int = 16


class ActiveLearner:
    """Runs the explore/select/label/train loop, one round at a time.

    ``scorer`` optionally overrides the session used for the select
    phase -- any :class:`InferenceSession` whose predictions carry
    ``max_force_dev`` (the ensemble itself by default; a batched
    :class:`repro.serve.InferenceService` in the online setting).
    """

    def __init__(
        self,
        ensemble: ModelEnsemble,
        reference: Potential,
        species: np.ndarray,
        masses: np.ndarray,
        cell: Cell,
        cfg: ActiveLearningConfig | None = None,
        kalman_cfg: KalmanConfig | None = None,
        initial_data: Dataset | None = None,
        seed: int = 0,
        scorer: InferenceSession | None = None,
    ):
        self.ensemble = ensemble
        self.species = np.asarray(species, dtype=np.int64)
        self.masses = np.asarray(masses, dtype=np.float64)
        self.cell = cell
        self.cfg = cfg or ActiveLearningConfig()
        self._rng = np.random.default_rng(seed)
        # exploration walks the live first member by reference: in the
        # synchronous loop training and MD never overlap, so the
        # freshest weights are always safe to read
        self.explorer = Explorer(
            ensemble.models[0], self.species, self.masses, cell,
            md_steps=self.cfg.md_steps,
            sample_every=self.cfg.sample_every,
            timestep_fs=self.cfg.timestep_fs,
            friction=self.cfg.friction,
            rng=self._rng,
        )
        self.gate = UncertaintyGate(
            scorer if scorer is not None else ensemble,
            self.species, cell,
            lo=self.cfg.select_lo, hi=self.cfg.select_hi,
            max_new_frames=self.cfg.max_new_frames,
        )
        self.labeler = Labeler(reference, self.species, cell)
        self.trainer = IncrementalTrainer(
            ensemble,
            kalman_cfg=kalman_cfg,
            batch_size=self.cfg.batch_size,
            epochs_per_round=self.cfg.epochs_per_round,
            seed=seed,
        )
        self.history: list[RoundStats] = []
        #: DP-GEN warm start: without initial labeled data the untrained
        #: surrogate drives exploration into unphysical regions and the
        #: loop bootstraps on garbage labels
        if initial_data is not None:
            self.trainer.accumulate(initial_data)
            self.trainer.train_round(seed_offset=-1)

    # -- stage state, re-exported for inspection -----------------------
    @property
    def scorer(self) -> InferenceSession:
        """The select-phase session (ensemble committee by default)."""
        return self.gate.scorer

    @scorer.setter
    def scorer(self, session: InferenceSession) -> None:
        self.gate.scorer = session

    @property
    def reference(self) -> Potential:
        return self.labeler.reference

    @property
    def optimizers(self) -> list:
        """The persistent per-member FEKF filters."""
        return self.trainer.optimizers

    @property
    def labeled(self) -> Dataset | None:
        """The accumulated labeled pool."""
        return self.trainer.labeled

    @labeled.setter
    def labeled(self, dataset: Dataset | None) -> None:
        self.trainer.labeled = dataset

    # ------------------------------------------------------------------
    def run_round(self, start: np.ndarray, temperature: float) -> RoundStats:
        """One explore/select/label/train round starting from ``start``."""
        ambient = current_tracer()
        tracer = Tracer(keep_events=True)
        index = len(self.history) + 1
        with tracer:
            with tracer.span("active.explore", round=index):
                candidates = self.explorer.explore(start, temperature)
            with tracer.span("active.select", round=index):
                decision = self.gate.select(candidates)
            if decision.n_selected:
                with tracer.span("active.label", round=index):
                    self.trainer.accumulate(
                        self.labeler.label(decision.selected, temperature)
                    )
            if self.trainer.ready:
                with tracer.span("active.train", round=index):
                    self.trainer.train_round(seed_offset=len(self.history))
        # label+train wall time, read off the round's own spans
        train_seconds = sum(
            e.wall_s
            for e in tracer.events
            if e.name in ("active.label", "active.train")
        )
        if ambient is not None:
            ambient.adopt(tracer)
        rmse = (
            self.ensemble.models[0]
            .evaluate_rmse(self.labeled, max_frames=16)["total_rmse"]
            if self.labeled is not None
            else float("nan")
        )
        stats = RoundStats(
            round_index=index,
            temperature=float(temperature),
            n_candidates=decision.n_candidates,
            n_selected=decision.n_selected,
            mean_deviation=decision.mean_deviation,
            train_seconds=train_seconds,
            rmse_after=rmse,
        )
        self.history.append(stats)
        return stats
