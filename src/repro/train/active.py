"""Concurrent (active) learning: the DP-GEN-style loop the paper's
"online learning" vision points at.

Each round:

1. **explore** -- drive MD with the ensemble's first model (the NNMD
   surrogate) from the current pool of configurations, at the round's
   temperature, collecting candidate frames;
2. **select** -- score candidates by the ensemble's maximum atomic force
   deviation and keep those inside the trust band
   ``lo < dev < hi`` (below lo: already learned; above hi: the surrogate
   is so wrong the trajectory itself is unreliable);
3. **label** -- evaluate the selected frames with the reference potential
   (the ab-initio stand-in);
4. **train** -- fine-tune every ensemble member with its own persistent
   FEKF filter on the accumulated labeled data.

Minutes-scale training (the paper's contribution) is what makes running
this loop dozens of times practical.

All predictions flow through the :class:`repro.model.InferenceSession`
protocol: exploration drives MD with a :class:`DeePMDCalculator` session
and selection scores candidates with the ensemble session's batched
``predict_many`` -- no descriptor plumbing is built here (that stays
inside ``repro.model``/``repro.serve``, enforced by the test suite).
A :class:`repro.serve.InferenceService` wrapping the same ensemble can be
passed as ``scorer`` to serve the selection phase remotely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.dataset import Dataset
from ..md.cell import Cell
from ..md.integrator import LangevinIntegrator
from ..md.potentials import Potential
from ..model.calculator import DeePMDCalculator
from ..model.ensemble import ModelEnsemble
from ..model.session import InferenceSession
from ..optim.ekf import FEKF
from ..optim.kalman import KalmanConfig
from .trainer import Trainer


@dataclass
class RoundStats:
    """Diagnostics for one active-learning round."""

    round_index: int
    temperature: float
    n_candidates: int
    n_selected: int
    mean_deviation: float
    train_seconds: float
    rmse_after: float


@dataclass
class ActiveLearningConfig:
    """Knobs of the loop (DP-GEN-flavoured defaults)."""

    #: trust band on the max force deviation (eV/A)
    select_lo: float = 0.05
    select_hi: float = 1.0
    #: MD exploration per round
    md_steps: int = 120
    sample_every: int = 10
    timestep_fs: float = 2.0
    friction: float = 0.02
    #: training per round
    epochs_per_round: int = 3
    batch_size: int = 4
    max_new_frames: int = 16


class ActiveLearner:
    """Runs the explore/select/label/train loop.

    ``scorer`` optionally overrides the session used for the select
    phase -- any :class:`InferenceSession` whose predictions carry
    ``max_force_dev`` (the ensemble itself by default; a batched
    :class:`repro.serve.InferenceService` in the online setting).
    """

    def __init__(
        self,
        ensemble: ModelEnsemble,
        reference: Potential,
        species: np.ndarray,
        masses: np.ndarray,
        cell: Cell,
        cfg: ActiveLearningConfig | None = None,
        kalman_cfg: KalmanConfig | None = None,
        initial_data: Dataset | None = None,
        seed: int = 0,
        scorer: InferenceSession | None = None,
    ):
        self.ensemble = ensemble
        self.reference = reference
        self.species = np.asarray(species, dtype=np.int64)
        self.masses = np.asarray(masses, dtype=np.float64)
        self.cell = cell
        self.cfg = cfg or ActiveLearningConfig()
        #: the select-phase session (ensemble committee by default)
        self.scorer: InferenceSession = scorer if scorer is not None else ensemble
        self._rng = np.random.default_rng(seed)
        kcfg = kalman_cfg or KalmanConfig(blocksize=2048, fused_update=True)
        #: one persistent filter per committee member
        self.optimizers = [
            FEKF(m, KalmanConfig(**vars(kcfg)), fused_env=True, seed=seed + k)
            for k, m in enumerate(ensemble.models)
        ]
        #: DP-GEN warm start: without initial labeled data the untrained
        #: surrogate drives exploration into unphysical regions and the
        #: loop bootstraps on garbage labels
        self.labeled: Dataset | None = initial_data
        self.history: list[RoundStats] = []
        if initial_data is not None:
            self._train_round(seed_offset=-1)

    def _train_round(self, seed_offset: int) -> None:
        for model, opt in zip(self.ensemble.models, self.optimizers):
            Trainer(
                model, opt, self.labeled, None,
                batch_size=self.cfg.batch_size,
                seed=seed_offset + 1,
            ).run(max_epochs=self.cfg.epochs_per_round)

    # ------------------------------------------------------------------
    def _explore(self, start: np.ndarray, temperature: float) -> np.ndarray:
        """MD with the surrogate; returns candidate frames (C, N, 3)."""
        calc = DeePMDCalculator(self.ensemble.models[0], self.species)
        integ = LangevinIntegrator(
            calc, self.masses, self.cell,
            timestep=self.cfg.timestep_fs, temperature=temperature,
            friction=self.cfg.friction, rng=self._rng,
        )
        state = integ.initialize(start, temp=temperature)
        frames = []
        for _ in range(self.cfg.md_steps // self.cfg.sample_every):
            state = integ.run(state, self.cfg.sample_every)
            frames.append(state.positions.copy())
        return np.stack(frames)

    def _select(self, frames: np.ndarray) -> tuple[np.ndarray, float]:
        preds = self.scorer.predict_many(frames, self.species, self.cell)
        devs = np.array([p.max_force_dev for p in preds], dtype=np.float64)
        keep = (devs > self.cfg.select_lo) & (devs < self.cfg.select_hi)
        chosen = np.where(keep)[0]
        if len(chosen) > self.cfg.max_new_frames:
            order = np.argsort(-devs[chosen])
            chosen = chosen[order[: self.cfg.max_new_frames]]
        return frames[chosen], float(devs.mean())

    def _label(self, frames: np.ndarray, temperature: float) -> Dataset:
        energies = np.empty(len(frames))
        forces = np.empty_like(frames)
        for t, pos in enumerate(frames):
            energies[t], forces[t] = self.reference.energy_forces(pos, self.cell)
        return Dataset(
            name="active",
            positions=frames,
            energies=energies,
            forces=forces,
            species=self.species,
            cell=self.cell,
            temperatures=np.full(len(frames), temperature),
        )

    def _accumulate(self, new: Dataset) -> None:
        if self.labeled is None:
            self.labeled = new
            return
        old = self.labeled
        self.labeled = Dataset(
            name="active",
            positions=np.concatenate([old.positions, new.positions]),
            energies=np.concatenate([old.energies, new.energies]),
            forces=np.concatenate([old.forces, new.forces]),
            species=old.species,
            cell=old.cell,
            temperatures=np.concatenate([old.temperatures, new.temperatures]),
        )

    # ------------------------------------------------------------------
    def run_round(self, start: np.ndarray, temperature: float) -> RoundStats:
        """One explore/select/label/train round starting from ``start``."""
        candidates = self._explore(start, temperature)
        selected, mean_dev = self._select(candidates)
        t0 = time.perf_counter()
        if len(selected):
            self._accumulate(self._label(selected, temperature))
        if self.labeled is not None and self.labeled.n_frames >= self.cfg.batch_size:
            self._train_round(seed_offset=len(self.history))
        train_seconds = time.perf_counter() - t0
        rmse = (
            self.ensemble.models[0]
            .evaluate_rmse(self.labeled, max_frames=16)["total_rmse"]
            if self.labeled is not None
            else float("nan")
        )
        stats = RoundStats(
            round_index=len(self.history) + 1,
            temperature=float(temperature),
            n_candidates=len(candidates),
            n_selected=len(selected),
            mean_deviation=mean_dev,
            train_seconds=train_seconds,
            rmse_after=rmse,
        )
        self.history.append(stats)
        return stats
