"""Training loop with epochs-to-target convergence measurement.

The paper's headline quantities are epochs (and wall seconds) needed to
reach a given RMSE (Tables 1, 4, 5; Figure 7a).  The trainer therefore
evaluates train/test RMSE after every epoch, keeps the full history, and
stops as soon as the requested target is met.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

import numpy as np

from ..data.loader import make_loader
from ..data.source import FrameSource
from ..model.network import DeePMD
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span
from .callbacks import Callback, ConsoleCallback, StepInfo


class SupportsStepBatch(Protocol):
    """Anything with ``step_batch(batch) -> stats`` (all repro optimizers)."""

    def step_batch(self, batch) -> dict[str, float]: ...


@dataclass
class EpochRecord:
    epoch: float
    train_energy_rmse: float
    train_force_rmse: float
    test_energy_rmse: float
    test_force_rmse: float
    #: seconds since run start, including evaluation overhead
    wall_time: float
    #: cumulative seconds spent in optimizer steps only (the quantity the
    #: paper's wall-clock comparisons are about; per-epoch evaluation is an
    #: artifact of our small datasets and is excluded here)
    train_time: float = 0.0

    @property
    def train_total(self) -> float:
        return self.train_energy_rmse + self.train_force_rmse

    @property
    def test_total(self) -> float:
        return self.test_energy_rmse + self.test_force_rmse


@dataclass
class TrainResult:
    """Outcome of one training run."""

    history: list[EpochRecord] = field(default_factory=list)
    epochs_to_target: Optional[float] = None
    #: cumulative optimizer-step seconds at the target epoch
    wall_time_to_target: Optional[float] = None
    total_wall_time: float = 0.0
    #: cumulative optimizer-step seconds for the whole run
    total_train_time: float = 0.0
    converged: bool = False

    @property
    def final(self) -> EpochRecord:
        if not self.history:
            raise RuntimeError(
                "no evaluations recorded (did the run have max_epochs=0?)"
            )
        return self.history[-1]

    def best_total(self, split: str = "train") -> float:
        if not self.history:
            raise RuntimeError(
                "no evaluations recorded (did the run have max_epochs=0?)"
            )
        key = "train_total" if split == "train" else "test_total"
        return min(getattr(r, key) for r in self.history)


@dataclass
class TargetCriterion:
    """Convergence target on per-epoch RMSE.

    ``metric`` is one of ``energy`` / ``force`` / ``total`` (E+F, the
    paper's accuracy measure) evaluated on the training split.
    """

    value: float
    metric: str = "total"

    def met(self, rec: EpochRecord) -> bool:
        if self.metric == "energy":
            return rec.train_energy_rmse <= self.value
        if self.metric == "force":
            return rec.train_force_rmse <= self.value
        return rec.train_total <= self.value


class Trainer:
    """Drives an optimizer over a frame source until target RMSE or max
    epochs.

    ``train_set``/``test_set`` are any :class:`~repro.data.source.
    FrameSource` -- the in-memory dataset or an out-of-core
    :class:`~repro.data.framestore.ShardedFrameStore`.  With
    ``prefetch=True`` the loader builds descriptor batches on rank
    workers ahead of the optimizer (see :class:`~repro.data.loader.
    StreamingLoader`); the batch *sequence* is bit-identical either way.
    """

    def __init__(
        self,
        model: DeePMD,
        optimizer: SupportsStepBatch,
        train_set: FrameSource,
        test_set: Optional[FrameSource] = None,
        batch_size: int = 1,
        seed: int = 0,
        eval_frames: int = 64,
        eval_every: int = 1,
        evals_per_epoch: int = 1,
        window: Optional[int] = None,
        prefetch: bool = False,
        prefetch_executor: Optional[str] = None,
        prefetch_workers: int = 2,
        prefetch_depth: int = 2,
    ):
        self.model = model
        self.optimizer = optimizer
        self.train_set = train_set
        self.test_set = test_set
        self.batch_size = int(batch_size)
        self.loader = make_loader(
            train_set,
            self.batch_size,
            cfg=model.cfg,
            seed=seed,
            window=window,
            prefetch=prefetch,
            executor=prefetch_executor,
            workers=prefetch_workers,
            depth=prefetch_depth,
        )
        self.eval_frames = int(eval_frames)
        #: evaluate RMSE every k epochs (always on the final epoch)
        self.eval_every = max(int(eval_every), 1)
        #: additionally evaluate k times *within* each epoch (fractional
        #: epochs_to_target resolution for fast-converging optimizers)
        self.evals_per_epoch = max(int(evals_per_epoch), 1)

    def close(self) -> None:
        """Release loader resources (prefetch workers, if any)."""
        self.loader.close()

    # ------------------------------------------------------------------
    def _evaluate(self, epoch: float, t0: float, train_seconds: float) -> EpochRecord:
        with _span("train.eval", epoch=epoch):
            tr = self.model.evaluate_rmse(self.train_set, max_frames=self.eval_frames)
            if self.test_set is not None and self.test_set.n_frames > 0:
                te = self.model.evaluate_rmse(self.test_set, max_frames=self.eval_frames)
            else:
                te = tr
        _metrics.REGISTRY.counter("train.evals").inc()
        return EpochRecord(
            epoch=epoch,
            train_energy_rmse=tr["energy_rmse"],
            train_force_rmse=tr["force_rmse"],
            test_energy_rmse=te["energy_rmse"],
            test_force_rmse=te["force_rmse"],
            wall_time=time.perf_counter() - t0,
            train_time=train_seconds,
        )

    def _record(self, rec: EpochRecord, result: TrainResult, cbs: list[Callback]) -> None:
        result.history.append(rec)
        for cb in cbs:
            cb.on_eval(rec)

    def run(
        self,
        max_epochs: int,
        target: Optional[TargetCriterion] = None,
        verbose: bool = False,
        callbacks: Optional[Sequence[Callback]] = None,
    ) -> TrainResult:
        """Train for up to ``max_epochs`` epochs (early-stop on ``target``).

        ``callbacks`` receive the trainer event stream (see
        :mod:`repro.train.callbacks`); ``verbose=True`` is a shim that
        appends a :class:`ConsoleCallback` reproducing the old printing.
        """
        cbs: list[Callback] = list(callbacks) if callbacks else []
        if verbose:
            cbs.append(ConsoleCallback())
        result = TrainResult()
        t0 = time.perf_counter()
        train_seconds = 0.0
        for cb in cbs:
            cb.on_train_begin(self)
        steps_counter = _metrics.REGISTRY.counter("train.steps")
        with _span("train.run", max_epochs=max_epochs, batch_size=self.batch_size):
            for epoch in range(1, max_epochs + 1):
                n_batches = len(self.loader)
                checkpoints = {
                    max(1, round(n_batches * k / self.evals_per_epoch))
                    for k in range(1, self.evals_per_epoch + 1)
                }
                stop = False
                # batch construction happens inside the loader -- the
                # synchronous path builds right here, the streaming path
                # overlaps it with the optimizer steps below; t_step
                # timing stays around the optimizer only either way
                batch_iter = self.loader.iter_batches(self.model.cfg, epoch - 1)
                for b_idx, (idx, batch) in enumerate(batch_iter, start=1):
                    t_step = time.perf_counter()
                    with _span("train.step", epoch=epoch, batch=b_idx):
                        stats = self.optimizer.step_batch(batch)
                    step_seconds = time.perf_counter() - t_step
                    train_seconds += step_seconds
                    steps_counter.inc()
                    if cbs:
                        info = StepInfo(
                            epoch=epoch,
                            batch_index=b_idx,
                            n_batches=n_batches,
                            step_seconds=step_seconds,
                            stats=stats if isinstance(stats, dict) else {},
                        )
                        for cb in cbs:
                            cb.on_step_end(info)
                    mid_eval = (
                        self.evals_per_epoch > 1
                        and b_idx in checkpoints
                        and b_idx != n_batches
                    )
                    if not mid_eval:
                        continue
                    frac_epoch = epoch - 1 + b_idx / n_batches
                    rec = self._evaluate(frac_epoch, t0, train_seconds)
                    self._record(rec, result, cbs)
                    if target is not None and target.met(rec):
                        result.epochs_to_target = frac_epoch
                        result.wall_time_to_target = rec.train_time
                        result.converged = True
                        stop = True
                        break
                # early stop / mid-epoch exit abandons the iterator: close
                # it explicitly so a prefetch producer stops immediately
                batch_iter.close()
                if stop:
                    break
                if epoch % self.eval_every != 0 and epoch != max_epochs:
                    continue
                rec = self._evaluate(epoch, t0, train_seconds)
                self._record(rec, result, cbs)
                for cb in cbs:
                    cb.on_epoch_end(rec)
                if target is not None and target.met(rec):
                    result.epochs_to_target = epoch
                    result.wall_time_to_target = rec.train_time
                    result.converged = True
                    break
        result.total_wall_time = time.perf_counter() - t0
        result.total_train_time = train_seconds
        for cb in cbs:
            cb.on_train_end(result)
        return result
