"""repro -- a from-scratch reproduction of "Training one DeePMD Model in
Minutes: a Step towards Online Learning" (PPoPP '24).

The package builds the whole stack on numpy: a double-backward autograd
engine, a classical-MD data generator standing in for ab-initio labels,
the DeePMD network with its symmetry-preserving descriptor, the FEKF /
RLEKF / Naive-EKF Kalman-filter optimizers, a simulated multi-GPU
data-parallel trainer, and a harness regenerating every table and figure
of the paper's evaluation.

Quickstart::

    from repro import generate_dataset, DeePMD, DeePMDConfig, Trainer, make_optimizer

    data = generate_dataset("Cu", frames_per_temperature=32, size="small")
    train, test = data.split(0.8)
    model = DeePMD.for_dataset(train, DeePMDConfig.scaled_down(rcut=4.0))
    opt = make_optimizer("fekf", model, blocksize=2048, fused_update=True,
                         fused_env=True)
    Trainer(model, opt, train, test, batch_size=32).run(max_epochs=10)
    print(model.evaluate_rmse(test))
"""

from . import telemetry
from .autograd import KernelCounter, Tensor, grad, no_grad
from .data import (
    BatchLoader,
    Dataset,
    FrameSource,
    SYSTEMS,
    ShardedFrameStore,
    StreamingLoader,
    generate_dataset,
    load_dataset,
    make_loader,
    open_source,
    save_dataset,
)
from .model import DeePMD, DeePMDConfig, make_batch
from .model.calculator import DeePMDCalculator
from .model.session import InferenceSession, ModelSession, Prediction
from .optim import (
    FEKF,
    Adam,
    KalmanConfig,
    NaiveEKF,
    Optimizer,
    RLEKF,
    SGD,
    load_state,
    make_optimizer,
    save_state,
)
from .online import (
    Explorer,
    IncrementalTrainer,
    Labeler,
    OnlineConfig,
    OnlineLearner,
    UncertaintyGate,
)
from .parallel import DistributedFEKF, SimCommunicator
from .serve import InferenceService, ServeConfig
from .train import Callback, ConsoleCallback, TargetCriterion, Trainer, TrainResult

__version__ = "1.0.0"

__all__ = [
    "Tensor",
    "grad",
    "no_grad",
    "KernelCounter",
    "Dataset",
    "BatchLoader",
    "StreamingLoader",
    "make_loader",
    "open_source",
    "FrameSource",
    "ShardedFrameStore",
    "SYSTEMS",
    "generate_dataset",
    "save_dataset",
    "load_dataset",
    "DeePMD",
    "DeePMDConfig",
    "DeePMDCalculator",
    "make_batch",
    "FEKF",
    "RLEKF",
    "NaiveEKF",
    "Adam",
    "SGD",
    "KalmanConfig",
    "Optimizer",
    "make_optimizer",
    "save_state",
    "load_state",
    "InferenceSession",
    "ModelSession",
    "Prediction",
    "InferenceService",
    "ServeConfig",
    "OnlineLearner",
    "OnlineConfig",
    "Explorer",
    "UncertaintyGate",
    "Labeler",
    "IncrementalTrainer",
    "DistributedFEKF",
    "SimCommunicator",
    "Trainer",
    "TrainResult",
    "TargetCriterion",
    "Callback",
    "ConsoleCallback",
    "telemetry",
    "__version__",
]
