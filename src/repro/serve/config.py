"""Configuration of the batched inference service."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ServeConfig:
    """Knobs of :class:`repro.serve.InferenceService`.

    The two micro-batching triggers mirror every production inference
    server: a batch is flushed as soon as it holds ``max_batch`` frames
    *or* the oldest queued request has waited ``max_delay_s`` -- whichever
    comes first.  Throughput comes from the first trigger, the latency
    bound from the second.
    """

    #: frames per forward pass (the size flush trigger)
    max_batch: int = 8
    #: longest a queued request waits for batch-mates (the deadline flush
    #: trigger); 2 ms keeps serving latency MD-step scale
    max_delay_s: float = 0.002
    #: bounded request queue -- submissions beyond this are rejected with
    #: :class:`repro.serve.ServeOverloaded` (backpressure, never OOM)
    max_queue: int = 64
    #: per-request wall-clock budget (queue wait + compute); expiry
    #: surfaces as :class:`repro.serve.ServeTimeout` at the caller
    request_timeout_s: float = 30.0
    #: executor backend for the worker pool (``serial`` / ``thread`` /
    #: ``process`` / an :class:`~repro.parallel.executor.Executor`
    #: instance); ``None`` consults ``$REPRO_EXECUTOR``
    executor: "Optional[str]" = None
    #: worker ranks the micro-batch is sharded across
    world_size: int = 1
    #: memoize neighbor tables by position/cell/cutoff fingerprint
    cache_neighbors: bool = True
    #: memoize whole predictions by (fingerprint, model_version)
    cache_predictions: bool = True
    #: LRU capacity of each cache (entries)
    cache_capacity: int = 256
    #: use the fused Opt1 descriptor kernel in workers and fallback path
    fused_env: bool = True
    #: extent of the sliding latency/error windows the health monitor
    #: reads (``InferenceService.health()``)
    window_s: float = 30.0
    #: batcher heartbeat deadline -- a beat older than this marks the
    #: batcher stalled (it wakes at least every 50 ms when healthy, so
    #: the default only fires on a genuinely wedged batch)
    heartbeat_deadline_s: float = 5.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_s < 0.0:
            raise ValueError("max_delay_s must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.request_timeout_s <= 0.0:
            raise ValueError("request_timeout_s must be > 0")
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.window_s <= 0.0:
            raise ValueError("window_s must be > 0")
        if self.heartbeat_deadline_s <= 0.0:
            raise ValueError("heartbeat_deadline_s must be > 0")
