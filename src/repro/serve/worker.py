"""Rank workers for the inference service.

The serve layer reuses the executor substrate built for data-parallel
FEKF (:mod:`repro.parallel.executor`): executors are duck-typed over a
``spec.build(rank)`` factory and a ``worker.run(method, args, capture)``
entry point, so a prediction worker rides the serial / thread / process
backends unchanged -- same retry-once semantics, same rank-ordered
result collection, same :class:`~repro.optim.worker.TaskResult`
telemetry envelope, same :class:`~repro.optim.worker.FaultInjector`
hook for robustness tests.

Each rank owns an independent replica of the served model (or committee)
and receives micro-batch *shards*; hot swap reaches workers as a
``set_weights`` broadcast carrying the state-dict payload, which also
makes :meth:`Executor.heal` work verbatim after a crash.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..model.session import InferenceSession, ModelSession
from ..model.ensemble import ModelEnsemble
from ..optim.worker import FaultInjector, TaskResult, WorkerTelemetry
from ..telemetry.metrics import Histogram
from ..telemetry.trace import Tracer

__all__ = ["PredictWorker", "PredictSpec", "SERVE_TASK_METHODS"]

#: methods dispatchable through :meth:`PredictWorker.run`
SERVE_TASK_METHODS = frozenset({"predict_task", "set_weights", "set_fault"})


def session_for_models(models: Sequence[DeePMD], fused_env: bool = True) -> InferenceSession:
    """One model -> :class:`ModelSession`; several -> :class:`ModelEnsemble`
    (committee mean + uncertainty in every response)."""
    models = list(models)
    if not models:
        raise ValueError("need at least one model to serve")
    if len(models) == 1:
        return ModelSession(models[0], fused_env=fused_env)
    return ModelEnsemble(models)


class PredictWorker:
    """Forward-only compute over one replica of the served session."""

    def __init__(
        self, models: Sequence[DeePMD], fused_env: bool = True, rank: int = 0
    ):
        self.session = session_for_models(models, fused_env=fused_env)
        self.rank = int(rank)
        self.fault: Optional[FaultInjector] = None

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def predict_task(self, shard: Optional[DescriptorBatch]) -> Optional[dict]:
        """Raw batched forward over this rank's shard (``None`` /
        zero-frame shards short-circuit -- ranks beyond the batch size in
        a small flush simply idle)."""
        if shard is None or shard.batch_size == 0:
            return None
        return self.session.predict_descriptor_batch(shard)

    def set_weights(self, state) -> None:
        """Load a hot-swap payload (``None`` re-syncs are no-ops, so
        :meth:`Executor.heal` works before any swap has happened)."""
        if state is not None:
            self.session.swap(state)

    def set_fault(self, fault: Optional[FaultInjector]) -> None:
        self.fault = fault

    # ------------------------------------------------------------------
    # executor entry point (same envelope as GradientWorker.run)
    # ------------------------------------------------------------------
    def run(
        self, method: str, args: tuple = (), capture: "bool | str" = False
    ) -> TaskResult:
        if method not in SERVE_TASK_METHODS:
            raise ValueError(f"unknown serve worker task {method!r}")
        if self.fault is not None:
            self.fault.check(method, self.rank)
        t0 = time.perf_counter()
        c0 = time.process_time()
        if capture:
            with Tracer(keep_events=True, profile=capture == "profile") as tracer:
                if method == "predict_task":
                    with tracer.span("serve.worker_predict", method=method):
                        payload = getattr(self, method)(*args)
                else:
                    payload = getattr(self, method)(*args)
            spans = [e.as_dict() for e in tracer.events]
            ops = (
                [o.as_dict() for o in tracer.profiler.events]
                if tracer.profiler is not None
                else []
            )
        else:
            payload = getattr(self, method)(*args)
            spans = []
            ops = []
        wall = time.perf_counter() - t0
        # per-task latency rides home as a mergeable histogram so the
        # parent's registry and sliding windows keep true per-rank
        # distributions, not just summed counters
        task_hist = Histogram(max_samples=8)
        task_hist.observe(wall)
        telemetry = WorkerTelemetry(
            rank=self.rank,
            pid=os.getpid(),
            wall_s=wall,
            cpu_s=time.process_time() - c0,
            counters={"serve.worker_tasks": 1.0},
            spans=spans,
            ops=ops,
            histograms={"serve.worker_task_s": task_hist.as_dict()},
        )
        return TaskResult(payload=payload, telemetry=telemetry)


@dataclass
class PredictSpec:
    """Picklable recipe for building rank prediction workers.

    ``build`` deep-copies the models so every rank owns an independent
    replica; after a respawn the service's lazy ``set_weights`` broadcast
    (or :meth:`Executor.heal`) restores the live weights.
    """

    models: list = field(default_factory=list)
    fused_env: bool = True

    def build(self, rank: int = 0) -> PredictWorker:
        return PredictWorker(
            [copy.deepcopy(m) for m in self.models],
            fused_env=self.fused_env,
            rank=rank,
        )
