"""LRU caches for the serve layer.

Two caches ride on the same primitive:

* the **neighbor cache** maps a frame fingerprint (positions + cell +
  cutoff, see :func:`repro.model.frame_fingerprint`) to its
  :class:`~repro.md.neighbor.NeighborTable` -- the O(N * Nm) table build
  dominates small-system inference, and MD clients re-evaluate identical
  frames (rejected MC moves, committee queries, replayed trajectories);
* the **prediction cache** maps ``(fingerprint, model_version)`` to a
  finished :class:`~repro.model.Prediction`, so bit-identical repeat
  requests skip the forward pass entirely.  Keying on the model version
  makes hot swap correct by construction, and
  :meth:`InferenceService.swap` additionally purges the cache eagerly so
  stale entries do not occupy capacity.

Both caches are guarded by the service's queue lock -- no internal
locking here.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction and hit stats."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """Value for ``key`` (refreshing recency) or ``None`` on miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss counters survive -- they describe
        the cache's whole service life, not one generation)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
