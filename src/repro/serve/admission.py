"""Admission control: the serve layer's shared backpressure primitives.

The batched :class:`~repro.serve.InferenceService` established the
repo's degradation contract: work submitted beyond a bounded capacity is
*rejected* with :class:`ServeOverloaded` rather than queued without
limit.  The online closed loop (``repro.online``) needs the same
contract between its pipeline stages -- an MD explorer must not outrun
the labeler into unbounded memory -- so the policy lives here as two
reusable pieces:

:class:`AdmissionController`
    The bare admit/reject decision over a depth and a limit, used by the
    service's request queue and by every :class:`BoundedWorkQueue`.

:class:`BoundedWorkQueue`
    A closable bounded FIFO connecting pipeline stages, with a choice of
    overflow policy:

    * ``"block"`` -- the producer waits for space (backpressure; the
      online explorer slows to the labeler's pace),
    * ``"reject"`` -- raise :class:`ServeOverloaded` immediately (the
      service's client-facing contract),
    * ``"drop_oldest"`` -- evict the stalest item to admit the newest
      (freshness-first streams, e.g. telemetry).

    ``close()`` ends the stream: producers can no longer put, consumers
    drain what remains and then see ``None`` / iteration stop.  All
    waits poll an optional ``stop`` event so a paused pipeline never
    deadlocks on a full or empty queue.

The exception hierarchy of the serve layer also lives here (it predates
this module in ``repro.serve.service``; the names re-export from both
places).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterator, Optional

from ..analysis.concurrency import Guarded, TrackedRLock

__all__ = [
    "ServeError",
    "ServeOverloaded",
    "ServeTimeout",
    "ServiceStopped",
    "QueueClosed",
    "AdmissionController",
    "BoundedWorkQueue",
]


class ServeError(RuntimeError):
    """Base class of every serve-layer failure."""


class ServeOverloaded(ServeError):
    """A bounded queue is full (backpressure, never unbounded memory)."""


class ServeTimeout(ServeError):
    """A request exceeded its wall-clock budget (queue wait + compute)."""


class ServiceStopped(ServeError):
    """The service is not accepting requests (stopped or never started)."""


class QueueClosed(ServeError):
    """A put after :meth:`BoundedWorkQueue.close` (the stream has ended)."""


class AdmissionController:
    """The admit/reject decision shared by every bounded queue.

    Stateless beyond its configuration: callers pass the current depth
    and get either silence (admitted) or :class:`ServeOverloaded`.
    Centralizing the check keeps the rejection message and the policy's
    meaning identical across the service and the pipeline queues.
    """

    __slots__ = ("limit", "name")

    def __init__(self, limit: int, name: str = "queue"):
        if limit < 1:
            raise ValueError("admission limit must be >= 1")
        self.limit = int(limit)
        self.name = name

    def admits(self, depth: int) -> bool:
        return depth < self.limit

    def check(self, depth: int) -> None:
        """Raise :class:`ServeOverloaded` when ``depth`` is at capacity."""
        if depth >= self.limit:
            raise ServeOverloaded(
                f"{self.name} full ({self.limit} pending)"
            )


_POLICIES = ("block", "reject", "drop_oldest")


class BoundedWorkQueue:
    """A closable bounded FIFO with an explicit overflow policy.

    Parameters
    ----------
    capacity:
        Maximum queued items; the admission limit.
    policy:
        ``"block"`` / ``"reject"`` / ``"drop_oldest"`` (see module docs).
    name:
        Appears in :class:`ServeOverloaded` messages and :meth:`stats`.
    """

    def __init__(self, capacity: int, policy: str = "block", name: str = "queue"):
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.admission = AdmissionController(capacity, name=name)
        self.policy = policy
        self.name = name
        self._items: deque = deque()
        # a tracked condition lock: queue waits show up in the lock-order
        # graph, and the closed flag declares the cond as its guard
        self._cond_lock = TrackedRLock(f"queue.{name}")
        self._cond = threading.Condition(self._cond_lock)
        self._closed = Guarded(False, self._cond_lock,
                               name=f"queue.{name}.closed")
        self._counts = {"put": 0, "got": 0, "dropped": 0, "rejected": 0}

    # ------------------------------------------------------------------
    def put(
        self,
        item,
        timeout: Optional[float] = None,
        stop: Optional[threading.Event] = None,
    ) -> bool:
        """Enqueue ``item``; returns True when it was admitted.

        ``"reject"`` raises :class:`ServeOverloaded` on overflow;
        ``"block"`` waits (polling ``stop`` every 50 ms) and returns
        False if the wait ends via ``timeout``/``stop`` instead of
        space; ``"drop_oldest"`` always admits, evicting the head.
        Putting into a closed queue raises :class:`QueueClosed`.
        """
        with self._cond:
            while True:
                if self._closed.get():
                    raise QueueClosed(f"{self.name} is closed")
                if self.admission.admits(len(self._items)):
                    break
                if self.policy == "reject":
                    self._counts["rejected"] += 1
                    self.admission.check(len(self._items))  # raises
                if self.policy == "drop_oldest":
                    self._items.popleft()
                    self._counts["dropped"] += 1
                    break
                if stop is not None and stop.is_set():
                    return False
                if timeout is not None and timeout <= 0:
                    return False
                self._cond.wait(timeout=0.05)
                if timeout is not None:
                    timeout -= 0.05
            self._items.append(item)
            self._counts["put"] += 1
            self._cond.notify_all()
            return True

    def get(
        self,
        timeout: Optional[float] = None,
        stop: Optional[threading.Event] = None,
    ):
        """Dequeue the oldest item, waiting for one to arrive.

        Returns ``None`` when the queue is closed and drained, or when
        the wait ends via ``timeout``/``stop`` -- consumers distinguish
        the two with :meth:`drained`.
        """
        with self._cond:
            while True:
                if self._items:
                    item = self._items.popleft()
                    self._counts["got"] += 1
                    self._cond.notify_all()
                    return item
                if self._closed.get():
                    return None
                if stop is not None and stop.is_set():
                    return None
                if timeout is not None and timeout <= 0:
                    return None
                self._cond.wait(timeout=0.05)
                if timeout is not None:
                    timeout -= 0.05

    def __iter__(self) -> Iterator:
        """Drain items until the queue is closed and empty."""
        while True:
            item = self.get()
            if item is None and self.drained():
                return
            if item is not None:
                yield item

    # ------------------------------------------------------------------
    def close(self) -> None:
        """End the stream: puts start raising, gets drain then None."""
        with self._cond:
            self._closed.set(True)
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed.get()

    def drained(self) -> bool:
        """True once closed with nothing left to consume."""
        with self._cond:
            return self._closed.get() and not self._items

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def stats(self) -> dict:
        """JSON-ready lifetime counters plus the current depth."""
        with self._cond:
            return {
                "name": self.name,
                "capacity": self.admission.limit,
                "policy": self.policy,
                "depth": len(self._items),
                **dict(self._counts),
            }
