"""The batched inference service: micro-batching, caching, hot swap.

:class:`InferenceService` wraps any :class:`repro.model.InferenceSession`
and serves its predictions to concurrent clients through the *same*
session protocol -- a client cannot tell (other than by throughput)
whether it holds a bare :class:`~repro.model.ModelSession` or a server
multiplexing eight MD walkers onto one forward pass.

Request path
------------
``predict`` computes the frame fingerprint, consults the prediction
cache, and on a miss enqueues the request into a bounded queue.  A
single batcher thread collects compatible requests (same atom count,
species, and cell) into micro-batches, flushing on whichever trigger
fires first: ``max_batch`` frames or the oldest request aging past
``max_delay_s``.  Each micro-batch becomes one neighbor-cached
:class:`DescriptorBatch`, sharded across the rank workers of a
:mod:`repro.parallel.executor` backend and stitched back in rank order
-- so results are bit-identical to a direct ``predict_many`` on the
wrapped session, batched or not, sharded or not.

Hot swap
--------
``swap(state)`` loads new weights into the service's local session,
bumps the monotonic ``model_version``, records the payload for the lazy
worker broadcast, and purges the prediction cache.  The batcher
snapshots ``(version, payload)`` *once per micro-batch* and syncs
workers before dispatch, so every batch -- and therefore every response
-- is computed entirely under a single version; requests in flight when
``swap`` lands simply drain under the version they were dispatched with.
Every :class:`~repro.model.Prediction` carries the version that produced
it, which is what the swap tests assert on.

Degradation
-----------
Submissions beyond ``max_queue`` are rejected with
:class:`ServeOverloaded` (backpressure, never unbounded memory); a
request that waits longer than its timeout raises :class:`ServeTimeout`
at the caller and is skipped by the batcher; a rank that crashes twice
(:class:`~repro.parallel.executor.WorkerCrash`) triggers ``heal`` plus a
serial fallback through the local session -- the batch is never lost,
mirroring the data-parallel trainer's semantics.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Optional

import numpy as np

from ..md.cell import Cell
from ..md.neighbor import neighbor_table
from ..model.environment import DescriptorBatch
from ..model.session import (
    InferenceSession,
    Prediction,
    frame_fingerprint,
    frames_to_batch,
)
from ..analysis.concurrency import Guarded, TrackedRLock
from ..parallel.executor import Executor, WorkerCrash, make_executor
from ..telemetry import metrics as _metrics
from ..telemetry.metrics import Histogram
from ..telemetry.monitor import HeartbeatRegistry, SlidingHistogram, WindowedRate
from ..telemetry.trace import Tracer, current_tracer, span as _span
from .admission import (
    AdmissionController,
    ServeError,
    ServeOverloaded,
    ServeTimeout,
    ServiceStopped,
)
from .cache import LRUCache
from .config import ServeConfig
from .worker import PredictSpec

__all__ = [
    "ServeError",
    "ServeOverloaded",
    "ServeTimeout",
    "ServiceStopped",
    "InferenceService",
]


class _Request:
    """One queued frame plus its rendezvous state."""

    __slots__ = (
        "positions", "species", "cell", "fingerprint", "group_key",
        "event", "prediction", "error", "deadline", "t_submit", "cancelled",
    )

    def __init__(self, positions, species, cell, fingerprint, group_key, timeout_s):
        self.positions = positions
        self.species = species
        self.cell = cell
        self.fingerprint = fingerprint
        self.group_key = group_key
        self.event = threading.Event()
        self.prediction: Optional[Prediction] = None
        self.error: Optional[Exception] = None
        self.deadline = time.monotonic() + timeout_s
        self.t_submit = time.perf_counter()
        self.cancelled = False


class InferenceService(InferenceSession):
    """Serve an :class:`InferenceSession` to concurrent clients.

    Parameters
    ----------
    session:
        The prediction surface to serve (a :class:`ModelSession`, a
        :class:`ModelEnsemble` for uncertainty-carrying responses, or a
        :class:`DeePMDCalculator`).
    config:
        Micro-batching / caching / degradation knobs.
    """

    def __init__(self, session: InferenceSession, config: Optional[ServeConfig] = None):
        self._session = session
        self.config = config or ServeConfig()
        # tracked locks: the lock-order recorder sees the batch-cond and
        # swap-lock nesting, and Guarded fields declare their guard
        self._cond_lock = TrackedRLock("serve.batch")
        self._cond = threading.Condition(self._cond_lock)
        # reentrant: _process holds it across the worker sync, whose
        # crash path re-enters via _heal
        self._swap_lock = TrackedRLock("serve.swap")
        self._queue: list[_Request] = []
        self._stopping = False
        self._drain = True
        self._started = False
        self._thread: Optional[threading.Thread] = None
        self._executor: Optional[Executor] = None
        self._spec: Optional[PredictSpec] = None
        #: swap payload not yet broadcast to workers (lazy sync)
        self._pending_state = Guarded(None, self._swap_lock,
                                      name="serve.pending_state")
        self._worker_version = Guarded(session.model_version,
                                       self._swap_lock,
                                       name="serve.worker_version")
        #: the shared admit/reject policy (see repro.serve.admission)
        self._admission = AdmissionController(
            self.config.max_queue, name="serve request queue"
        )
        self._neighbor_cache = LRUCache(self.config.cache_capacity)
        self._prediction_cache = LRUCache(self.config.cache_capacity)
        #: service-local distributions (the global REGISTRY also gets the
        #: counters, but a benchmark comparing two service instances needs
        #: per-instance stats)
        self._latency = Histogram()
        self._occupancy = Histogram()
        #: live view for the health plane: latency / throughput / errors
        #: over the last ``config.window_s`` seconds, plus per-rank task
        #: times folded home from worker telemetry
        self._latency_window = SlidingHistogram(window_s=self.config.window_s)
        self._traffic = WindowedRate(window_s=self.config.window_s)
        self._worker_window = SlidingHistogram(window_s=self.config.window_s)
        #: batcher liveness beacon (a HealthMonitor source via health())
        self.heartbeats = HeartbeatRegistry()
        self._counts = {
            "requests": 0, "responses": 0, "batches": 0, "cache_hits": 0,
            "timeouts": 0, "rejected": 0, "fallbacks": 0,
        }
        self._ambient_tracer: Optional[Tracer] = None
        self._loop_tracer: Optional[Tracer] = None
        self._capture: "bool | str" = False

    # ------------------------------------------------------------------
    # InferenceSession surface
    # ------------------------------------------------------------------
    @property
    def cfg(self):
        return self._session.cfg

    @property
    def model_version(self) -> int:
        return self._session.model_version

    def predict_descriptor_batch(self, batch: DescriptorBatch) -> dict:
        """Direct (unbatched, uncached) path through the local session."""
        with self._swap_lock:
            return self._session.predict_descriptor_batch(batch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Spin up the worker pool and the batcher thread."""
        if self._started:
            return self
        self._stopping = False
        models = getattr(self._session, "models", None)
        if models is None:
            model = getattr(self._session, "model", None)
            models = None if model is None else [model]
        if models is not None:
            self._spec = PredictSpec(
                models=list(models), fused_env=self.config.fused_env
            )
            with self._swap_lock:
                self._executor = make_executor(
                    self.config.executor, self.config.world_size
                )
                self._executor.start(self._spec)
                # replicas are deep copies of the session's *current* models
                self._worker_version.set(self._session.model_version)
        # telemetry is pay-for-what-you-use: capture worker spans only
        # when the starting thread has a tracer installed
        self._ambient_tracer = current_tracer()
        if self._ambient_tracer is not None:
            profiling = self._ambient_tracer.profiler is not None
            self._capture = "profile" if profiling else True
        else:
            self._capture = False
        self._thread = threading.Thread(
            target=self._serve_loop, name="serve-batcher", daemon=True
        )
        self._thread.start()
        # watchdog: the batcher beats every collect iteration (<=50ms idle
        # wait), so a beat older than the deadline means a wedged batch --
        # a stalled worker, not an idle queue
        self.heartbeats.register(
            "serve-batcher",
            deadline_s=self.config.heartbeat_deadline_s,
            thread=self._thread,
        )
        self._started = True
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the batcher (``drain=True`` finishes queued requests
        first; ``False`` fails them with :class:`ServiceStopped`) and
        tear down the worker pool."""
        if not self._started:
            return
        with self._cond:
            self._stopping = True
            self._drain = drain
            self._cond.notify_all()
        self._thread.join()
        self._thread = None
        with self._swap_lock:
            if self._executor is not None:
                self._executor.close()
                self._executor = None
        self._merge_loop_telemetry()
        self._started = False

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def predict(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: Cell,
        timeout: Optional[float] = None,
    ) -> Prediction:
        """One frame through the micro-batching queue (blocking)."""
        req = self._submit(positions, species, cell, timeout)
        if isinstance(req, Prediction):
            return req
        return self._await(req)

    def predict_many(
        self,
        frames: np.ndarray,
        species: np.ndarray,
        cell: Cell,
        timeout: Optional[float] = None,
    ) -> list[Prediction]:
        """Submit every frame at once (they co-batch), then collect."""
        frames = np.asarray(frames, dtype=np.float64)
        pending: list = []
        try:
            for pos in frames:
                pending.append(self._submit(pos, species, cell, timeout))
        except ServeError:
            for item in pending:
                if isinstance(item, _Request):
                    self._cancel(item)
            raise
        return [
            item if isinstance(item, Prediction) else self._await(item)
            for item in pending
        ]

    def _submit(self, positions, species, cell, timeout):
        """Cache-check then enqueue; returns a :class:`Prediction` on a
        cache hit, else the queued :class:`_Request`."""
        positions = np.asarray(positions, dtype=np.float64)
        species = np.asarray(species, dtype=np.int64)
        c = self.cfg
        fp = frame_fingerprint(positions, cell, c.rcut, c.nmax)
        skey = species.tobytes()
        timeout_s = self.config.request_timeout_s if timeout is None else float(timeout)
        with self._cond:
            if self._stopping or not self._started:
                raise ServiceStopped("inference service is not running")
            self._counts["requests"] += 1
            _metrics.REGISTRY.counter("serve.requests").inc()
            if self.config.cache_predictions:
                hit = self._prediction_cache.get(
                    (fp, skey, self._session.model_version)
                )
                if hit is not None:
                    self._counts["cache_hits"] += 1
                    self._counts["responses"] += 1
                    _metrics.REGISTRY.counter("serve.cache_hits").inc()
                    return replace(hit, cached=True)
            if not self._admission.admits(len(self._queue)):
                self._counts["rejected"] += 1
                _metrics.REGISTRY.counter("serve.rejected").inc()
                self._traffic.mark(errors=1.0)
                self._admission.check(len(self._queue))  # raises ServeOverloaded
            group_key = (
                positions.shape[0],
                skey,
                np.asarray(cell.lengths, dtype=np.float64).tobytes(),
            )
            req = _Request(positions, species, cell, fp, group_key, timeout_s)
            self._queue.append(req)
            _metrics.REGISTRY.gauge("serve.queue_depth").set(len(self._queue))
            self._cond.notify_all()
        return req

    def _await(self, req: _Request) -> Prediction:
        remaining = req.deadline - time.monotonic()
        if not req.event.wait(timeout=max(remaining, 0.0)):
            self._cancel(req)
            # the batcher may have fulfilled it between expiry and cancel
            if not req.event.is_set():
                self._counts["timeouts"] += 1
                _metrics.REGISTRY.counter("serve.timeouts").inc()
                self._traffic.mark(errors=1.0)
                raise ServeTimeout(
                    f"request expired after {self.config.request_timeout_s}s"
                )
        if req.error is not None:
            raise req.error
        return req.prediction

    def _cancel(self, req: _Request) -> None:
        with self._cond:
            if not req.event.is_set():
                req.cancelled = True
                if req in self._queue:
                    self._queue.remove(req)

    # ------------------------------------------------------------------
    # hot swap
    # ------------------------------------------------------------------
    def swap(self, state) -> int:
        """Load new weights; returns the new monotonic model version.

        In-flight micro-batches drain under the version they were
        dispatched with; the next batch (and every later response) is
        computed under the new one.  The prediction cache is purged --
        its entries are keyed by version, so the purge frees capacity
        rather than preventing staleness.
        """
        with self._swap_lock:
            version = self._session.swap(state)
            self._pending_state.set(state)
            with self._cond:
                self._prediction_cache.clear()
        _metrics.REGISTRY.counter("serve.swaps").inc()
        return version

    def restore_version(self, version: int) -> int:
        """Fast-forward the wrapped session's version (checkpoint resume).

        Worker replicas already carry the restored weights (they are
        deep-copied from the session at :meth:`start`), so the version
        counter moves without a broadcast.
        """
        with self._swap_lock:
            result = self._session.restore_version(version)
            if self._executor is not None:
                self._worker_version.set(result)
        return result

    # ------------------------------------------------------------------
    # batcher
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        tracer = None
        if self._ambient_tracer is not None:
            tracer = Tracer(keep_events=True, profile=self._capture == "profile")
            tracer.__enter__()
        try:
            while True:
                group = self._collect()
                if group is None:
                    break
                self._process(group)
        finally:
            if tracer is not None:
                tracer.__exit__(None, None, None)
                with self._cond:
                    self._loop_tracer = tracer
            self._fail_remaining()
            self.heartbeats.done("serve-batcher")

    def _collect(self) -> Optional[list[_Request]]:
        """Block until a flush trigger fires; returns one compatible
        micro-batch (or ``None`` when stopped and done)."""
        cfg = self.config
        with self._cond:
            while True:
                # idle waiting is healthy: the beat lands every wakeup
                # (<=50ms), so only a wedge *inside* batch work stalls it
                self.heartbeats.beat("serve-batcher")
                if self._stopping and not self._drain:
                    return None  # _fail_remaining rejects whatever is queued
                self._queue = [r for r in self._queue if not r.cancelled]
                if self._queue:
                    break
                if self._stopping:
                    return None
                self._cond.wait(timeout=0.05)
            head = self._queue[0]
            flush_at = time.monotonic() + cfg.max_delay_s
            while True:
                self.heartbeats.beat("serve-batcher")
                group = [
                    r for r in self._queue
                    if not r.cancelled and r.group_key == head.group_key
                ][: cfg.max_batch]
                now = time.monotonic()
                if len(group) >= cfg.max_batch or now >= flush_at or self._stopping:
                    for r in group:
                        self._queue.remove(r)
                    _metrics.REGISTRY.gauge("serve.queue_depth").set(len(self._queue))
                    return group
                self._cond.wait(timeout=flush_at - now)

    def _sync_workers_locked(self) -> None:
        """Broadcast the pending swap payload (caller holds _swap_lock)."""
        version = self._session.model_version
        if self._executor is None or self._worker_version.get() == version:
            return
        self._executor.broadcast("set_weights", self._pending_state.get())
        self._worker_version.set(version)

    def _process(self, group: list[_Request]) -> None:
        cfg = self.config
        with self._swap_lock:
            version = self._session.model_version
            try:
                self._sync_workers_locked()
            except WorkerCrash:
                self._heal()
        with _span("serve.batch", size=len(group), version=version):
            batch = self._assemble(group)
            out = None
            if self._executor is not None:
                try:
                    out = self._dispatch(batch)
                except WorkerCrash:
                    self._counts["fallbacks"] += 1
                    _metrics.REGISTRY.counter("serve.fallbacks").inc()
                    self._heal()
            if out is None:
                # serial fallback (or a session with no extractable
                # models): compute under the swap lock so the stamped
                # version always matches the weights used
                with self._swap_lock, _span("serve.fallback"):
                    out = self._session.predict_descriptor_batch(batch)
                    version = self._session.model_version
        self._respond(group, out, version)

    def _assemble(self, group: list[_Request]) -> DescriptorBatch:
        """Micro-batch -> one DescriptorBatch, through the neighbor cache."""
        c = self.cfg
        tables: "list | None" = None
        if self.config.cache_neighbors:
            tables = []
            with self._cond:
                cached = [self._neighbor_cache.get(r.fingerprint) for r in group]
            for r, table in zip(group, cached):
                if table is None:
                    table = neighbor_table(r.positions, r.cell, c.rcut, c.nmax)
                    with self._cond:
                        self._neighbor_cache.put(r.fingerprint, table)
                tables.append(table)
        frames = np.stack([r.positions for r in group])
        return frames_to_batch(
            frames, group[0].species, group[0].cell, c, tables=tables
        )

    def _dispatch(self, batch: DescriptorBatch) -> dict:
        """Shard the batch across ranks, run one forward per rank, stitch
        the outputs back in rank order (determinism)."""
        world = self._executor.world_size
        b = batch.batch_size
        base, rem = divmod(b, world)
        shards, lo = [], 0
        for rank in range(world):
            size = base + (1 if rank < rem else 0)
            shards.append(batch.frame_slice(lo, lo + size) if size else None)
            lo += size
        results = self._executor.submit(
            [("predict_task", (shard,)) for shard in shards],
            capture=self._capture,
        )
        outs = []
        for res in results:
            if res is None:
                continue
            self._merge_worker_telemetry(res.telemetry)
            if res.payload is not None:
                outs.append(res.payload)
        keys = [k for k, v in outs[0].items() if v is not None]
        return {k: np.concatenate([o[k] for o in outs]) for k in keys}

    def _heal(self) -> None:
        """Respawn dead ranks and re-sync replicas to the live weights."""
        if self._executor is None:
            return
        try:
            with self._swap_lock:
                self._executor.heal(self._spec, self._pending_state.get())
                self._worker_version.set(self._session.model_version)
        except Exception:
            # pool unrecoverable: all further batches use the fallback
            with self._swap_lock:
                self._executor.close()
                self._executor = None

    def _respond(self, group: list[_Request], out: dict, version: int) -> None:
        e_std = out.get("energy_std")
        dev = out.get("max_force_dev")
        self._counts["batches"] += 1
        _metrics.REGISTRY.counter("serve.batches").inc()
        self._occupancy.observe(len(group))
        _metrics.REGISTRY.histogram("serve.batch_occupancy").observe(len(group))
        now = time.perf_counter()
        for t, req in enumerate(group):
            pred = Prediction(
                energy=float(out["energy"][t]),
                forces=out["forces"][t],
                model_version=version,
                energy_std=None if e_std is None else float(e_std[t]),
                max_force_dev=None if dev is None else float(dev[t]),
            )
            with self._cond:
                if self.config.cache_predictions:
                    self._prediction_cache.put(
                        (req.fingerprint, req.group_key[1], version), pred
                    )
                if req.cancelled:
                    continue
                req.prediction = pred
                self._counts["responses"] += 1
                req.event.set()
            latency = now - req.t_submit
            self._latency.observe(latency)
            self._latency_window.observe(latency)
            self._traffic.mark()
            _metrics.REGISTRY.histogram("serve.latency_s").observe(latency)

    def _fail_remaining(self) -> None:
        with self._cond:
            for req in self._queue:
                if not req.event.is_set():
                    req.error = ServiceStopped("service stopped before dispatch")
                    req.event.set()
            self._queue = []

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _merge_worker_telemetry(self, t) -> None:
        _metrics.REGISTRY.merge_counters(t.counters, rank=t.rank)
        hists = getattr(t, "histograms", None)
        if hists:
            _metrics.REGISTRY.merge_histograms(hists, rank=t.rank)
            task = hists.get("serve.worker_task_s")
            if task is not None:
                self._worker_window.merge(task)
        tracer = current_tracer()  # the batcher's loop tracer
        if tracer is None:
            return
        if t.spans:
            tracer.emit_foreign(t.spans, rank=t.rank, pid=t.pid)
        if t.ops and tracer.profiler is not None:
            tracer.profiler.emit_foreign(t.ops, rank=t.rank, pid=t.pid)

    def _merge_loop_telemetry(self) -> None:
        """Fold the batcher thread's locally captured spans/ops into the
        tracer that was ambient when the service started (tracer stacks
        are thread-local, so this is the only way they ever meet)."""
        with self._cond:
            loop, ambient = self._loop_tracer, self._ambient_tracer
            self._loop_tracer = None
        if loop is None or ambient is None:
            return
        ambient.adopt(loop, thread="serve-batcher")

    def stats(self) -> dict:
        """JSON-ready service-life statistics (per-instance)."""
        lat = self._latency.summary()
        lat["p99"] = self._latency.percentile(99)
        with self._cond:
            depth = len(self._queue)
        return {
            **dict(self._counts),
            "model_version": self._session.model_version,
            "queue_depth": depth,
            "latency_s": lat,
            "batch_occupancy": self._occupancy.summary(),
            "neighbor_cache": self._neighbor_cache.stats(),
            "prediction_cache": self._prediction_cache.stats(),
        }

    def health(self) -> dict:
        """Live health sample for the runtime monitor.

        Unlike :meth:`stats` (service-lifetime aggregates), everything
        here is *windowed* over the last ``config.window_s`` seconds --
        the shape the stock serve SLO rules
        (:func:`repro.telemetry.monitor.default_serve_rules`) evaluate.
        """
        with self._cond:
            depth = len(self._queue)
        capacity = max(self.config.max_queue, 1)
        return {
            "started": self._started,
            "model_version": self._session.model_version,
            "latency": self._latency_window.summary(),
            "worker_task": self._worker_window.summary(),
            "traffic": self._traffic.summary(),
            "queue_depth": depth,
            "queue_capacity": capacity,
            "queue_saturation": depth / capacity,
            "heartbeats": self.heartbeats.ages(),
        }

    def inject_fault(self, rank: int, fault) -> None:
        """Install a :class:`~repro.optim.worker.FaultInjector` on one
        rank's worker (robustness / watchdog tests; mirrors the
        data-parallel trainer's hook).  A ``stall_s`` fault with
        ``raises=False`` wedges the rank -- and therefore the batcher --
        without tripping the crash/heal path, which is exactly the
        silent-hang mode the heartbeat SLO exists to catch."""
        if self._executor is None:
            raise RuntimeError("service has no worker pool (start it first)")
        calls = [
            ("set_fault", (fault if r == rank else None,))
            for r in range(self._executor.world_size)
        ]
        self._executor.submit(calls)
