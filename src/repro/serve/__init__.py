"""repro.serve -- batched inference serving for trained models.

The online-learning deployment the paper motivates (Sec. 1's Figure 1)
needs the freshly trained model *served*: many MD walkers and selection
queries asking for energies/forces concurrently, while training keeps
producing new weights.  This package provides that server as just
another :class:`repro.model.InferenceSession`:

    with InferenceService(ModelSession(model), ServeConfig()) as svc:
        pred = svc.predict(positions, species, cell)
        svc.swap(new_state)        # hot swap; pred.model_version tells

See :mod:`repro.serve.service` for the micro-batching / caching /
hot-swap design notes.
"""

from .admission import (
    AdmissionController,
    BoundedWorkQueue,
    QueueClosed,
    ServeError,
    ServeOverloaded,
    ServeTimeout,
    ServiceStopped,
)
from .cache import LRUCache
from .config import ServeConfig
from .service import InferenceService
from .worker import PredictSpec, PredictWorker

__all__ = [
    "ServeConfig",
    "InferenceService",
    "LRUCache",
    "PredictSpec",
    "PredictWorker",
    "AdmissionController",
    "BoundedWorkQueue",
    "QueueClosed",
    "ServeError",
    "ServeOverloaded",
    "ServeTimeout",
    "ServiceStopped",
]
