"""Shared finding/report model for every repro.analysis analyzer.

All three analyzers (graph linter, determinism auditor, AST project lint)
emit :class:`Finding` objects into a :class:`Report`, so the CLI, the CI
job, and the test fixtures consume one representation.  Renders in the
classic compiler diagnostic shape ``file:line: severity: [rule] message``
so editors and CI annotations pick locations up for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Finding", "Report", "SEVERITIES"]

#: ordered from most to least severe
SEVERITIES = ("error", "warning", "info")


@dataclass
class Finding:
    """One diagnostic produced by an analyzer.

    ``file``/``line`` locate the finding when it maps to source (AST lint
    always does; graph/determinism findings may instead carry op names or
    backend ids in ``context``).
    """

    rule: str
    message: str
    severity: str = "error"
    file: Optional[str] = None
    line: Optional[int] = None
    context: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        loc = ""
        if self.file is not None:
            loc = f"{self.file}:{self.line}: " if self.line else f"{self.file}: "
        return f"{loc}{self.severity}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "context": self.context,
        }


@dataclass
class Report:
    """The outcome of one analyzer run.

    ``checks_run`` names every check that executed (so "no findings"
    is distinguishable from "nothing ran"); ``metrics`` carries scalar
    evidence (files scanned, steps audited, fingerprints compared).
    """

    tool: str
    findings: list[Finding] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    def extend(self, other: "Report") -> None:
        """Fold another report's evidence into this one."""
        self.findings.extend(other.findings)
        self.checks_run.extend(other.checks_run)
        self.metrics.update(other.metrics)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding is present."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self, verbose: bool = False) -> str:
        lines = [f.render() for f in self.findings]
        errors = sum(1 for f in self.findings if f.severity == "error")
        warnings = sum(1 for f in self.findings if f.severity == "warning")
        lines.append(
            f"{self.tool}: {len(self.checks_run)} checks, "
            f"{errors} errors, {warnings} warnings"
        )
        if verbose:
            for name in self.checks_run:
                lines.append(f"  ran: {name}")
            for key, value in sorted(self.metrics.items()):
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "tool": self.tool,
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
            "checks_run": list(self.checks_run),
            "metrics": dict(self.metrics),
        }
