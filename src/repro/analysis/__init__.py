"""repro.analysis -- static & dynamic analyzers for the training stack.

Three analyzers share one finding/report model (:mod:`findings`) and one
CLI (``python -m repro.analysis``):

* :mod:`graphlint` -- records an autograd op tape (via the same launch
  sinks that feed the kernel counters) and checks graph invariants:
  float64 end to end, backward shapes, output/operand aliasing, buffer
  mutation behind autograd's back, unreachable nodes, unregistered
  kernels, and second-order safety.  Includes the dynamic
  :class:`~graphlint.Sanitizer` (NaN/Inf guard hooks on every op with
  telemetry-span attribution) and :func:`~graphlint.verify_second_order`
  (double backward vs central differences).
* :mod:`determinism` -- runs the same FEKF training under the serial /
  thread / process executors and certifies bit-identical P trajectories,
  rank-ordered results, lockstep replicas, single-writer P access, and
  clean sink stacks.
* :mod:`astlint` -- AST rules over the project source: no unseeded
  randomness, no wall-clock reads outside the manifest writer, no
  cross-subpackage private imports, no float32 casts on hot paths, every
  kernel-name literal registered, no order-nondeterministic reductions.

Quick start::

    python -m repro.analysis lint                 # AST lint the package
    python -m repro.analysis determinism          # 3-backend audit
    python -m repro.analysis graph path/to/fixture.py

    from repro.analysis import GraphLinter
    from repro.autograd import capture
    with capture("tape") as tape:
        loss = model(batch)
    print(GraphLinter(tape).lint(roots=[loss]).render())
"""

from .astlint import ProjectLinter, RULES, lint_paths
from .determinism import (
    SharedStateProbe,
    audit_determinism,
    run_backend,
    state_fingerprint,
)
from .findings import Finding, Report
from .graphlint import (
    GraphLinter,
    Sanitizer,
    SanitizerError,
    TapeRecorder,
    record_tape,
    verify_second_order,
)

__all__ = [
    "Finding",
    "Report",
    "ProjectLinter",
    "lint_paths",
    "RULES",
    "GraphLinter",
    "TapeRecorder",
    "record_tape",
    "Sanitizer",
    "SanitizerError",
    "verify_second_order",
    "audit_determinism",
    "run_backend",
    "state_fingerprint",
    "SharedStateProbe",
]
