"""repro.analysis -- static & dynamic analyzers for the training stack.

Three analyzers share one finding/report model (:mod:`findings`) and one
CLI (``python -m repro.analysis``):

* :mod:`graphlint` -- records an autograd op tape (via the same launch
  sinks that feed the kernel counters) and checks graph invariants:
  float64 end to end, backward shapes, output/operand aliasing, buffer
  mutation behind autograd's back, unreachable nodes, unregistered
  kernels, and second-order safety.  Includes the dynamic
  :class:`~graphlint.Sanitizer` (NaN/Inf guard hooks on every op with
  telemetry-span attribution) and :func:`~graphlint.verify_second_order`
  (double backward vs central differences).
* :mod:`determinism` -- runs the same FEKF training under the serial /
  thread / process executors and certifies bit-identical P trajectories,
  rank-ordered results, lockstep replicas, single-writer P access, and
  clean sink stacks.
* :mod:`astlint` -- AST rules over the project source: no unseeded
  randomness, no wall-clock reads outside the manifest writer, no
  cross-subpackage private imports, no float32 casts on hot paths, every
  kernel-name literal registered, no order-nondeterministic reductions.
* :mod:`concurrency` -- the thread-safety pillar: a static lock-
  discipline lint (unguarded shared fields, untracked locks, unbounded
  waits, sleep-polling), a dynamic lock-order recorder with deadlock-
  cycle detection behind ``capture(kind="locks")``, and annotated race
  checking of :class:`~concurrency.Guarded` fields behind
  ``capture(kind="races")``.

Quick start::

    python -m repro.analysis lint                 # AST lint the package
    python -m repro.analysis determinism          # 3-backend audit
    python -m repro.analysis graph path/to/fixture.py
    python -m repro.analysis concurrency          # lock-discipline lint
    python -m repro.analysis concurrency --scenario online \
        --graph-out lock_order.json               # deadlock-free cert

    from repro.analysis import GraphLinter
    from repro.autograd import capture
    with capture("tape") as tape:
        loss = model(batch)
    print(GraphLinter(tape).lint(roots=[loss]).render())
"""

from .astlint import ProjectLinter, RULES, lint_paths
from .concurrency import (
    CONCURRENCY_RULES,
    ConcurrencyLinter,
    Guarded,
    LockOrderRecorder,
    RaceChecker,
    TrackedLock,
    TrackedRLock,
    lint_concurrency,
    run_scenario,
)
from .determinism import (
    SharedStateProbe,
    audit_determinism,
    run_backend,
    state_fingerprint,
)
from .findings import Finding, Report
from .graphlint import (
    GraphLinter,
    Sanitizer,
    SanitizerError,
    TapeRecorder,
    record_tape,
    verify_second_order,
)

__all__ = [
    "Finding",
    "Report",
    "ProjectLinter",
    "lint_paths",
    "RULES",
    "GraphLinter",
    "TapeRecorder",
    "record_tape",
    "Sanitizer",
    "SanitizerError",
    "verify_second_order",
    "audit_determinism",
    "run_backend",
    "state_fingerprint",
    "SharedStateProbe",
    "TrackedLock",
    "TrackedRLock",
    "Guarded",
    "LockOrderRecorder",
    "RaceChecker",
    "ConcurrencyLinter",
    "lint_concurrency",
    "CONCURRENCY_RULES",
    "run_scenario",
]
