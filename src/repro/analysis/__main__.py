"""CLI for the analysis subsystem: ``python -m repro.analysis <cmd>``.

Exit codes: 0 = clean, 1 = findings at error severity, 2 = usage or
load failure (a fixture that cannot be imported, an unknown backend).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

from ..autograd.capture import capture
from .astlint import lint_paths
from .determinism import DEFAULT_BACKENDS, audit_determinism
from .findings import Report
from .graphlint import GraphLinter


def _emit(report: Report, as_json: bool, verbose: bool = False) -> int:
    if as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render(verbose=verbose))
    return report.exit_code


def _load_graph_module(path: Path):
    """Import a graph fixture file as an anonymous module.  The module
    must define ``build()`` returning the graph root tensor (or a
    sequence of roots)."""
    spec = importlib.util.spec_from_file_location(f"_graph_fixture_{path.stem}", path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    if not hasattr(mod, "build"):
        raise ImportError(f"{path} defines no build() function")
    return mod


def cmd_lint(args) -> int:
    paths = [Path(p) for p in args.paths] if args.paths else None
    report = lint_paths(paths, display_base=Path.cwd())
    return _emit(report, args.json, args.verbose)


def cmd_graph(args) -> int:
    path = Path(args.fixture)
    try:
        mod = _load_graph_module(path)
    except Exception as exc:
        print(f"{path}: error: cannot load graph fixture: {exc}", file=sys.stderr)
        return 2
    sanitizer = None
    with capture("tape") as tape:
        if args.sanitize:
            with capture("sanitize", mode="collect") as sanitizer:
                roots = mod.build()
        else:
            roots = mod.build()
    from ..autograd.tensor import Tensor

    if isinstance(roots, Tensor):
        roots = [roots]
    elif roots is None:
        roots = []
    report = GraphLinter(tape).lint(
        roots=list(roots), require_second_order=args.second_order
    )
    if sanitizer is not None:
        report.extend(sanitizer.report())
    return _emit(report, args.json, args.verbose)


def cmd_concurrency(args) -> int:
    from .concurrency import lint_concurrency, run_scenario

    paths = [Path(p) for p in args.paths] if args.paths else None
    report = lint_concurrency(paths, display_base=Path.cwd())
    report.tool = "concurrency"
    graphs = {}
    for name in args.scenario or []:
        try:
            scenario_report, graph = run_scenario(
                name, held_threshold_s=args.held_threshold_s
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report.extend(scenario_report)
        graphs[Path(name).stem if Path(name).exists() else name] = graph
    if args.graph_out:
        out = Path(args.graph_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(
            {"schema": "repro.lockgraph/v1", "scenarios": graphs}, indent=2
        ))
        print(f"lock-order graph: {out}")
    return _emit(report, args.json, args.verbose)


def cmd_determinism(args) -> int:
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    for b in backends:
        if b not in DEFAULT_BACKENDS:
            print(f"unknown backend {b!r} (choose from "
                  f"{', '.join(DEFAULT_BACKENDS)})", file=sys.stderr)
            return 2
    report = audit_determinism(
        world_size=args.world_size,
        steps=args.steps,
        backends=backends,
        seed=args.seed,
        compiled=args.compiled,
    )
    if args.manifest_dir:
        from ..harness.manifest import write_manifest

        Path(args.manifest_dir).mkdir(parents=True, exist_ok=True)
        path = write_manifest(
            args.manifest_dir,
            "determinism_audit",
            config={
                "world_size": args.world_size,
                "steps": args.steps,
                "backends": list(backends),
                "seed": args.seed,
                "compiled": args.compiled,
            },
            metrics={**report.metrics, "ok": report.ok,
                     "findings": len(report.findings)},
        )
        print(f"manifest: {path}")
    return _emit(report, args.json, args.verbose)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static & dynamic analyzers: AST project lint, "
                    "autograd graph lint, parallel determinism audit, "
                    "concurrency (lock discipline, lock order, races).",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_lint = sub.add_parser("lint", help="AST project lint (default: the "
                                         "installed repro package)")
    p_lint.add_argument("paths", nargs="*", help="files/directories to lint")
    p_lint.add_argument("--json", action="store_true")
    p_lint.add_argument("--verbose", action="store_true")
    p_lint.set_defaults(fn=cmd_lint)

    p_graph = sub.add_parser("graph", help="lint the autograd tape recorded "
                                           "while running a fixture's build()")
    p_graph.add_argument("fixture", help="python file defining build()")
    p_graph.add_argument("--second-order", action="store_true",
                         help="require every tape op to be create_graph-safe")
    p_graph.add_argument("--sanitize", action="store_true",
                         help="also run the NaN/Inf sanitizer (collect mode)")
    p_graph.add_argument("--json", action="store_true")
    p_graph.add_argument("--verbose", action="store_true")
    p_graph.set_defaults(fn=cmd_graph)

    p_det = sub.add_parser("determinism", help="certify bit-identical P "
                                               "across executor backends")
    p_det.add_argument("--world-size", type=int, default=4)
    p_det.add_argument("--steps", type=int, default=20)
    p_det.add_argument("--backends", default=",".join(DEFAULT_BACKENDS))
    p_det.add_argument("--seed", type=int, default=7)
    p_det.add_argument("--compiled", action="store_true",
                       help="train through the tape-compiled replay engine "
                            "(certifies fused plans keep bit-identity)")
    p_det.add_argument("--manifest-dir", default=None,
                       help="write BENCH_determinism_audit.json here")
    p_det.add_argument("--json", action="store_true")
    p_det.add_argument("--verbose", action="store_true")
    p_det.set_defaults(fn=cmd_determinism)

    p_conc = sub.add_parser(
        "concurrency",
        help="lock-discipline lint + lock-order/race certification "
             "scenarios (default: lint the installed repro package)",
    )
    p_conc.add_argument("paths", nargs="*",
                        help="files/directories to lint")
    p_conc.add_argument("--scenario", action="append", default=[],
                        help="run a certification scenario under the "
                             "lock-order recorder and race checker: "
                             "queues | serve | online | a path to a "
                             "python file defining run() (repeatable)")
    p_conc.add_argument("--held-threshold-s", type=float, default=None,
                        help="holds longer than this become "
                             "lock-held-too-long warnings (default 1s)")
    p_conc.add_argument("--graph-out", default=None,
                        help="write the recorded lock-order graph(s) "
                             "as JSON (the CI artifact)")
    p_conc.add_argument("--json", action="store_true")
    p_conc.add_argument("--verbose", action="store_true")
    p_conc.set_defaults(fn=cmd_concurrency)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
