"""AST-based project lint: repo-wide static rules for reproducibility.

The paper's claims are *determinism* claims (bit-identical P across
parallel backends, reproducible convergence traces), so the rules here
police the ways Python code quietly breaks them:

``unseeded-random``
    Legacy ``np.random.*`` calls (global, unseedable per-site state) and
    zero-argument ``np.random.default_rng()`` (OS-entropy seed).  All
    randomness must flow from an explicitly seeded ``Generator``.
``wallclock-time``
    ``time.time()`` outside ``harness/manifest.py`` (the one place a
    wall-clock timestamp belongs -- the run manifest).  Measurements use
    ``time.perf_counter``/``process_time``; logic must never branch on
    wall-clock.
``private-import``
    Importing an underscore-prefixed name from a *different* ``repro``
    subpackage (e.g. ``repro.analysis`` reaching into
    ``repro.autograd._internals``).  Private names are free within their
    own subpackage; across subpackages they are an API hole.
``float32-cast``
    ``astype(np.float32)`` (or ``np.float32(...)``) in hot-path
    subsystems (autograd/optim/model/parallel): the engine invariant is
    float64 end to end, and a float32 round-trip visibly perturbs the
    Kalman P update (see ``repro.autograd.tensor.GRAD_DTYPE``).
``unregistered-op``
    A string-literal kernel name passed to ``make_op``/``record_launch``
    that no ``register_op()`` call in the scanned tree declares.  Keeps
    the instrument op table exhaustive, which the graph linter and the
    profiler depend on.
``unordered-reduction``
    ``concurrent.futures.as_completed`` -- completion order is
    scheduler-dependent, so any reduction folded in that order breaks
    bit-identical parallel replication.  Rank results must be reduced in
    rank order (see ``repro.parallel``).
``in-memory-materialize``
    Full-corpus reads (``source.positions[:]``-style whole-array slices
    of frame arrays, or zero-argument ``.to_dataset()``) inside the
    streaming hot paths (train/online).  Those components must go
    through the :class:`~repro.data.source.FrameSource` windowed API
    (``get_frames``/``neighbor_tables``) so an out-of-core
    :class:`~repro.data.framestore.ShardedFrameStore` keeps RSS bounded
    -- one stray ``[:]`` silently re-binds the corpus size to RAM.

Per-line suppression: append ``# lint: disable=<rule>[,<rule>...]`` to
the offending line (or the line directly above it).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .findings import Finding, Report

__all__ = ["ProjectLinter", "lint_paths", "RULES"]

RULES = (
    "unseeded-random",
    "wallclock-time",
    "private-import",
    "float32-cast",
    "unregistered-op",
    "unordered-reduction",
    "in-memory-materialize",
)

#: legacy np.random attributes that are fine (not stateful draws)
_RANDOM_OK = {"default_rng", "Generator", "PCG64", "SeedSequence", "BitGenerator"}
#: path components that mark a hot-path subsystem for the float32 rule
_HOT_COMPONENTS = {"autograd", "optim", "model", "parallel"}
#: files allowed to read the wall clock
_WALLCLOCK_ALLOWED = ("harness/manifest.py",)
#: path components where frame access must stay windowed (streaming hot
#: paths -- an out-of-core store may back the source)
_MATERIALIZE_SCOPE = {"train", "online"}
#: per-frame arrays a FrameSource may expose; a full slice of any of
#: them materializes the whole corpus
_FRAME_ARRAYS = {"positions", "forces", "energies", "temperatures"}

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+)")


def _suppressed(lines: Sequence[str], lineno: int, rule: str) -> bool:
    """``# lint: disable=rule`` on the flagged line or the line above."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(lines):
            m = _SUPPRESS_RE.search(lines[ln - 1])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def _module_parts(path: Path) -> Optional[tuple[str, ...]]:
    """Dotted module parts for ``path`` if it lives under a ``repro``
    package directory (``.../repro/optim/ekf.py`` -> ("repro", "optim",
    "ekf")); ``None`` for files outside the package (fixtures, scripts)."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    i = len(parts) - 1 - parts[::-1].index("repro")
    mod = parts[i:]
    mod[-1] = mod[-1][:-3] if mod[-1].endswith(".py") else mod[-1]
    if mod[-1] == "__init__":
        mod = mod[:-1]
    return tuple(mod)


def _subpackage(parts: Optional[tuple[str, ...]]) -> Optional[str]:
    """The ``repro.<sub>`` component a module belongs to (None outside)."""
    if parts is None or len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1]


class _FileVisitor(ast.NodeVisitor):
    def __init__(
        self,
        path: Path,
        display: str,
        lines: Sequence[str],
        known_ops: set,
        report: Report,
    ):
        self.path = path
        self.display = display
        self.lines = lines
        self.known_ops = known_ops
        self.report = report
        self.module = _module_parts(path)
        self.subpackage = _subpackage(self.module)
        self.hot = bool(_HOT_COMPONENTS & set(path.parts))
        self.streaming_hot = bool(_MATERIALIZE_SCOPE & set(path.parts))
        self.wallclock_ok = any(
            self.display.endswith(suffix) for suffix in _WALLCLOCK_ALLOWED
        )
        #: names bound by ``from ... import as_completed``-style imports
        self.as_completed_aliases: set[str] = set()

    # ------------------------------------------------------------------
    def flag(self, rule: str, node: ast.AST, message: str, **context) -> None:
        lineno = getattr(node, "lineno", 0)
        if _suppressed(self.lines, lineno, rule):
            return
        self.report.add(Finding(
            rule=rule,
            message=message,
            file=self.display,
            line=lineno,
            context=context,
        ))

    # -- imports --------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = self._resolve_import(node)
        if target is not None and target and target[0] == "repro":
            target_sub = _subpackage(target)
            for alias in node.names:
                if not alias.name.startswith("_"):
                    continue
                if target_sub is not None and target_sub == self.subpackage:
                    continue  # private within its own subpackage: fine
                self.flag(
                    "private-import", node,
                    f"imports private name {alias.name!r} from "
                    f"{'.'.join(target)} (a different repro subpackage); "
                    f"use or add a public accessor instead",
                    name=alias.name, source=".".join(target),
                )
        if node.module == "concurrent.futures":
            for alias in node.names:
                if alias.name == "as_completed":
                    self.as_completed_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _resolve_import(self, node: ast.ImportFrom) -> Optional[tuple[str, ...]]:
        """Absolute module parts an ImportFrom refers to, or None when the
        importer's package is unknown and the import is relative."""
        mod = tuple(node.module.split(".")) if node.module else ()
        if node.level == 0:
            return mod
        if self.module is None:
            # a relative import in a file outside any repro package --
            # nothing to resolve against
            return None
        # package of the importing module, then up (level - 1) more
        pkg = self.module[:-1]
        up = node.level - 1
        if up > len(pkg):
            return None
        base = pkg[:len(pkg) - up] if up else pkg
        return tuple(base) + mod

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._check_random(node)
        self._check_wallclock(node)
        self._check_float32(node)
        self._check_op_literal(node)
        self._check_as_completed(node)
        self._check_materialize_call(node)
        self.generic_visit(node)

    # -- subscripts ------------------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._check_materialize_slice(node)
        self.generic_visit(node)

    @staticmethod
    def _attr_chain(node: ast.AST) -> Optional[tuple[str, ...]]:
        """("np", "random", "seed") for ``np.random.seed`` etc."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        return None

    def _check_random(self, node: ast.Call) -> None:
        chain = self._attr_chain(node.func)
        if chain is None or len(chain) < 3:
            return
        if chain[0] not in ("np", "numpy") or chain[1] != "random":
            return
        name = chain[2]
        if name == "default_rng":
            if not node.args and not node.keywords:
                self.flag(
                    "unseeded-random", node,
                    "np.random.default_rng() without a seed draws entropy "
                    "from the OS; pass an explicit seed",
                )
            return
        if name not in _RANDOM_OK:
            self.flag(
                "unseeded-random", node,
                f"legacy np.random.{name}() uses the unseedable global "
                f"state; use a seeded np.random.default_rng(seed) Generator",
                name=name,
            )

    def _check_wallclock(self, node: ast.Call) -> None:
        if self.wallclock_ok:
            return
        chain = self._attr_chain(node.func)
        if chain in (("time", "time"), ("time", "time_ns")):
            self.flag(
                "wallclock-time", node,
                f"{'.'.join(chain)}() outside harness/manifest.py; use "
                f"time.perf_counter() for measurement -- wall-clock reads "
                f"make runs irreproducible",
            )

    def _check_float32(self, node: ast.Call) -> None:
        if not self.hot:
            return
        is_cast = False
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype" and node.args:
            arg = node.args[0]
            chain = self._attr_chain(arg)
            if chain is not None and chain[-1] == "float32":
                is_cast = True
            elif isinstance(arg, ast.Constant) and arg.value == "float32":
                is_cast = True
        else:
            chain = self._attr_chain(func)
            if chain is not None and chain[-1] == "float32" and \
                    chain[0] in ("np", "numpy"):
                is_cast = True
        if is_cast:
            self.flag(
                "float32-cast", node,
                "float32 cast in a hot-path subsystem; the engine invariant "
                "is float64 end to end (repro.autograd.tensor.GRAD_DTYPE)",
            )

    def _check_op_literal(self, node: ast.Call) -> None:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        if func_name not in ("make_op", "record_launch"):
            return
        literal: Optional[ast.Constant] = None
        if func_name == "make_op":
            if len(node.args) >= 4 and isinstance(node.args[3], ast.Constant):
                literal = node.args[3]
            for kw in node.keywords:
                if kw.arg == "op" and isinstance(kw.value, ast.Constant):
                    literal = kw.value
        else:
            if node.args and isinstance(node.args[0], ast.Constant):
                literal = node.args[0]
            for kw in node.keywords:
                if kw.arg == "op_name" and isinstance(kw.value, ast.Constant):
                    literal = kw.value
        if literal is None or not isinstance(literal.value, str):
            return
        if literal.value not in self.known_ops:
            self.flag(
                "unregistered-op", node,
                f"kernel name {literal.value!r} passed to {func_name}() has "
                f"no register_op() declaration anywhere in the tree; register "
                f"it next to the kernel definition",
                op=literal.value,
            )

    def _check_materialize_call(self, node: ast.Call) -> None:
        if not self.streaming_hot:
            return
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr == "to_dataset" and \
                not node.args and not node.keywords:
            self.flag(
                "in-memory-materialize", node,
                "zero-argument .to_dataset() materializes the whole corpus "
                "in RAM inside a streaming hot path; read windows through "
                "get_frames()/neighbor_tables() or pass explicit indices",
            )

    def _check_materialize_slice(self, node: ast.Subscript) -> None:
        if not self.streaming_hot or not isinstance(node.ctx, ast.Load):
            return
        sl = node.slice
        if not (isinstance(sl, ast.Slice) and sl.lower is None
                and sl.upper is None and sl.step is None):
            return
        if isinstance(node.value, ast.Attribute) and \
                node.value.attr in _FRAME_ARRAYS:
            self.flag(
                "in-memory-materialize", node,
                f"full slice of .{node.value.attr} reads the whole corpus "
                f"into RAM inside a streaming hot path; an out-of-core "
                f"FrameSource must be read in windows "
                f"(get_frames(indices), not .{node.value.attr}[:])",
                attr=node.value.attr,
            )

    def _check_as_completed(self, node: ast.Call) -> None:
        flagged = False
        if isinstance(node.func, ast.Name) and \
                node.func.id in self.as_completed_aliases:
            flagged = True
        else:
            chain = self._attr_chain(node.func)
            if chain is not None and chain[-1] == "as_completed" and \
                    ("futures" in chain or "concurrent" in chain):
                flagged = True
        if flagged:
            self.flag(
                "unordered-reduction", node,
                "as_completed() yields results in scheduler-dependent order; "
                "reductions folded in that order are not bit-reproducible -- "
                "iterate futures in rank order instead",
            )


def _collect_registered_ops(trees: Iterable[tuple[Path, ast.AST]]) -> set:
    """Every string literal declared via ``register_op("name", ...)``
    anywhere in the scanned tree (purely static -- nothing is imported)."""
    known: set = set()
    for _path, tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "register_op":
                continue
            target = None
            if node.args and isinstance(node.args[0], ast.Constant):
                target = node.args[0]
            for kw in node.keywords:
                if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                    target = kw.value
            if target is not None and isinstance(target.value, str):
                known.add(target.value)
    return known


def _live_registered_ops() -> set:
    """Names in the live instrument op table, after importing the core
    op-defining modules.  Complements the static scan so linting a
    *subtree* still knows about ops registered elsewhere in the package."""
    try:
        from ..autograd import fuse, ops  # noqa: F401  (import = register)
        from ..autograd.instrument import registered_ops
        from ..model import environment  # noqa: F401
        from ..optim import kalman  # noqa: F401
    except Exception:  # pragma: no cover - partial installs
        return set()
    return set(registered_ops())


class ProjectLinter:
    """Runs every AST rule over a file tree.

    ``root`` defaults to the installed ``repro`` package directory, so
    ``python -m repro.analysis lint`` with no arguments lints the
    project source.  ``display_base`` controls how paths render in
    findings (relative to it when possible).
    """

    def __init__(
        self,
        paths: Optional[Sequence[Path]] = None,
        display_base: Optional[Path] = None,
    ):
        if paths is None:
            paths = [Path(__file__).resolve().parent.parent]  # the repro pkg
        self.paths = [Path(p) for p in paths]
        self.display_base = display_base

    def _iter_files(self) -> list[Path]:
        files: list[Path] = []
        for p in self.paths:
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
        return files

    def _display(self, path: Path) -> str:
        base = self.display_base
        if base is not None:
            try:
                return str(path.resolve().relative_to(Path(base).resolve()))
            except ValueError:
                pass
        return str(path)

    def run(self) -> Report:
        report = Report(tool="astlint")
        report.checks_run.extend(RULES)
        files = self._iter_files()
        report.metrics["files_scanned"] = len(files)
        trees: list[tuple[Path, ast.AST]] = []
        sources: dict[Path, list[str]] = {}
        for path in files:
            try:
                text = path.read_text()
                tree = ast.parse(text, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.add(Finding(
                    rule="parse-error",
                    message=f"could not parse: {exc}",
                    file=self._display(path),
                    line=getattr(exc, "lineno", None),
                ))
                continue
            trees.append((path, tree))
            sources[path] = text.splitlines()
        known_ops = _collect_registered_ops(trees)
        known_ops |= _live_registered_ops()
        report.metrics["registered_ops"] = len(known_ops)
        for path, tree in trees:
            visitor = _FileVisitor(
                path, self._display(path), sources[path], known_ops, report
            )
            visitor.visit(tree)
        return report


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    display_base: Optional[Path] = None,
) -> Report:
    """Convenience wrapper: ``ProjectLinter(paths).run()``."""
    return ProjectLinter(paths, display_base=display_base).run()
