"""Autograd-graph linter: static checks over a recorded op tape.

The engine's invariants (see ``repro.autograd.tensor``) are cheap to state
and easy to break silently from model code: every graph buffer stays
float64, backward closures return gradients shaped like their parents,
op outputs never alias operand buffers (except declared view ops), and
recorded buffers are not mutated behind autograd's back.  The linter
checks those invariants over a whole recorded tape at once::

    with autograd.capture("tape") as tape:
        loss = model(batch)
    report = GraphLinter(tape).lint(roots=[loss])
    sys.exit(report.exit_code)

The tape/sanitizer sinks themselves now live in
:mod:`repro.autograd.capture` (one unified entry point for every
op-stream observer); this module re-exports them and keeps a deprecated
``record_tape`` shim for one release.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..autograd.capture import (  # noqa: F401  (re-exported surface)
    Sanitizer,
    SanitizerError,
    TapeEntry,
    TapeRecorder,
    capture,
)
from ..autograd.config import no_grad
from ..autograd.gradcheck import check_second_order
from ..autograd.instrument import op_info
from ..autograd.tensor import GRAD_DTYPE, Tensor
from .findings import Finding, Report

__all__ = [
    "TapeEntry",
    "TapeRecorder",
    "record_tape",
    "GraphLinter",
    "Sanitizer",
    "SanitizerError",
    "verify_second_order",
]


def record_tape() -> capture:
    """Deprecated alias for ``autograd.capture("tape")`` (one release)."""
    warnings.warn(
        "record_tape() is deprecated; use repro.autograd.capture('tape')",
        DeprecationWarning,
        stacklevel=2,
    )
    return capture("tape")


def _ancestors(roots: Iterable[Tensor]) -> set[int]:
    """ids of every tensor reachable from ``roots`` via parent edges."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node._parents)
    return seen


class GraphLinter:
    """Checks a recorded tape against the engine's graph invariants."""

    def __init__(self, tape: TapeRecorder):
        self.tape = tape

    def lint(
        self,
        roots: Sequence[Tensor] = (),
        require_second_order: bool = False,
    ) -> Report:
        """Run every check; pass the graph outputs as ``roots`` to enable
        reachability analysis.  ``require_second_order=True`` additionally
        rejects any tape op whose registry entry says its backward is not
        differentiable (the ``create_graph=True`` safety check)."""
        report = Report(tool="graphlint")
        report.metrics["tape_length"] = len(self.tape.entries)
        report.metrics["launches"] = len(self.tape.launch_names)
        self._check_registered(report)
        self._check_dtypes(report)
        self._check_aliasing(report)
        self._check_mutation(report)
        self._check_backward_shapes(report)
        if roots:
            self._check_reachability(report, roots)
        if require_second_order:
            self._check_second_order_safety(report)
        return report

    # ------------------------------------------------------------------
    def _check_registered(self, report: Report) -> None:
        report.checks_run.append("unregistered-op")
        seen: set[str] = set()
        for name in self.tape.launch_names:
            if name in seen:
                continue
            seen.add(name)
            if op_info(name) is None:
                report.add(Finding(
                    rule="unregistered-op",
                    message=f"kernel {name!r} is not in the instrument op table; "
                            f"add a register_op() call next to its definition",
                    context={"op": name},
                ))

    def _check_dtypes(self, report: Report) -> None:
        report.checks_run.append("dtype-invariant")
        for e in self.tape.entries:
            if e.tensor.data.dtype != GRAD_DTYPE:
                report.add(Finding(
                    rule="dtype-invariant",
                    message=f"op {e.op!r} produced dtype {e.tensor.data.dtype} "
                            f"(engine invariant: every graph buffer is "
                            f"{np.dtype(GRAD_DTYPE).name})",
                    context={"op": e.op, "seq": e.seq,
                             "dtype": str(e.tensor.data.dtype)},
                ))

    def _check_aliasing(self, report: Report) -> None:
        report.checks_run.append("alias-hazard")
        for e in self.tape.entries:
            info = op_info(e.op)
            if info is not None and info.may_view:
                continue  # reshape/transpose/gather: views are the contract
            for j, parent in enumerate(e.tensor._parents):
                if np.may_share_memory(e.tensor.data, parent.data):
                    report.add(Finding(
                        rule="alias-hazard",
                        message=f"output of op {e.op!r} shares memory with its "
                                f"parent #{j} ({parent._op!r}); an in-place update "
                                f"would corrupt the saved activation -- copy the "
                                f"buffer or register the op with may_view=True",
                        context={"op": e.op, "seq": e.seq, "parent": parent._op},
                    ))

    def _check_mutation(self, report: Report) -> None:
        report.checks_run.append("buffer-mutation")
        for e in self.tape.entries:
            if e.mutated():
                report.add(Finding(
                    rule="buffer-mutation",
                    message=f"buffer produced by op {e.op!r} was mutated after "
                            f"recording (write-after-read on a shared graph "
                            f"buffer); backward would silently use the new values",
                    context={"op": e.op, "seq": e.seq},
                ))

    def _check_backward_shapes(self, report: Report) -> None:
        """Invoke each node's backward closure with a ones seed and check
        every returned gradient is shaped like (and typed like) its parent."""
        report.checks_run.append("backward-shape")
        for e in self.tape.entries:
            node = e.tensor
            if node._backward_fn is None:
                continue
            seed = Tensor(np.ones_like(node.data))
            try:
                # numerical validity (log(0), 1/0, ...) is the
                # Sanitizer's concern; this probe only checks structure
                with no_grad(), np.errstate(all="ignore"):
                    parent_grads = node._backward_fn(seed)
            except Exception as exc:
                report.add(Finding(
                    rule="backward-shape",
                    message=f"backward of op {e.op!r} raised "
                            f"{type(exc).__name__}: {exc}",
                    context={"op": e.op, "seq": e.seq},
                ))
                continue
            if len(parent_grads) != len(node._parents):
                report.add(Finding(
                    rule="backward-shape",
                    message=f"backward of op {e.op!r} returned "
                            f"{len(parent_grads)} gradients for "
                            f"{len(node._parents)} parents",
                    context={"op": e.op, "seq": e.seq},
                ))
                continue
            for j, (parent, g) in enumerate(zip(node._parents, parent_grads)):
                if g is None:
                    continue
                if g.data.shape != parent.data.shape:
                    report.add(Finding(
                        rule="backward-shape",
                        message=f"backward of op {e.op!r} returned shape "
                                f"{g.data.shape} for parent #{j} "
                                f"({parent._op!r}, shape {parent.data.shape})",
                        context={"op": e.op, "seq": e.seq, "parent": parent._op},
                    ))
                elif g.data.dtype != GRAD_DTYPE:
                    report.add(Finding(
                        rule="backward-shape",
                        message=f"backward of op {e.op!r} returned dtype "
                                f"{g.data.dtype} for parent #{j} (gradients "
                                f"must be {np.dtype(GRAD_DTYPE).name})",
                        context={"op": e.op, "seq": e.seq, "parent": parent._op},
                    ))

    def _check_reachability(self, report: Report, roots: Sequence[Tensor]) -> None:
        """Tape entries not reachable from any root are dead compute --
        ops whose result never feeds the output (a refactoring leftover,
        or a detach() where none was meant)."""
        report.checks_run.append("unreachable-node")
        live = _ancestors(roots)
        root_ids = {id(r) for r in roots}
        for e in self.tape.entries:
            if id(e.tensor) not in live and id(e.tensor) not in root_ids:
                report.add(Finding(
                    rule="unreachable-node",
                    message=f"op {e.op!r} (tape #{e.seq}) is unreachable from "
                            f"the graph roots: its result never contributes to "
                            f"the output (dead compute or an unintended detach)",
                    context={"op": e.op, "seq": e.seq},
                ))

    def _check_second_order_safety(self, report: Report) -> None:
        report.checks_run.append("second-order-unsafe")
        flagged: set[str] = set()
        for e in self.tape.entries:
            info = op_info(e.op)
            if info is not None and not info.second_order and e.op not in flagged:
                flagged.add(e.op)
                report.add(Finding(
                    rule="second-order-unsafe",
                    message=f"op {e.op!r} is registered second_order=False but "
                            f"appears in a graph built for create_graph=True; "
                            f"differentiating through its backward is not exact",
                    context={"op": e.op},
                ))


# ---------------------------------------------------------------------------
# dynamic double-backward verification (satellite of the graph linter)
# ---------------------------------------------------------------------------
def verify_second_order(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    label: str = "fn",
    report: Optional[Report] = None,
    **kwargs,
) -> Report:
    """Run :func:`repro.autograd.gradcheck.check_second_order` on ``fn``
    and convert a failure into a ``second-order-mismatch`` finding.

    This is the linter's *dynamic* companion to the static
    ``second-order-unsafe`` registry check: the static check trusts the
    registry; this one differentiates through the actual backward pass
    (exactly how the force label enters training) and compares against
    central differences.
    """
    if report is None:
        report = Report(tool="graphlint")
    report.checks_run.append(f"second-order-verify:{label}")
    try:
        check_second_order(fn, inputs, **kwargs)
    except AssertionError as exc:
        report.add(Finding(
            rule="second-order-mismatch",
            message=f"double backward of {label} disagrees with central "
                    f"differences: {exc}",
            context={"label": label},
        ))
    return report
