"""Determinism auditor for the parallel layer.

The paper's Sec. 3.3 argument -- replicate P, communicate only gradients,
reduce in rank order -- stands or falls on *bit* reproducibility: every
executor backend must walk the exact same P trajectory.  The test suite
asserts this for a couple of steps; the auditor certifies it as a
standalone analysis over a longer run, and additionally probes the
mechanisms the guarantee rests on:

``bit-identical-p``
    Runs the same training under serial / thread / process executors and
    compares a sha256 fingerprint of (optimizer state dict + weight
    vector) *after every step*.  The first diverging step is reported
    per backend.
``rank-order``
    After every step, a ``get_weights`` round must return results in
    rank order (``results[i].telemetry.rank == i``) -- the property the
    rank-ordered reduction depends on.
``replica-sync``
    Every rank's replica weights must be bit-equal to the parent's after
    each step (the delta broadcast keeps replicas lockstep).
``single-writer-p``
    Instruments ``KalmanState.update`` with an access probe: all writes
    to the shared P must come from one thread with no overlapping entry
    (write epochs are disjoint).  A second writer thread or a reentrant
    update means the thread backend is racing on the filter state.
``sink-leak``
    The thread-local kernel-launch sink stack and the tracer stack must
    be empty after each run -- a leaked sink means some worker's
    instrumentation escapes its scope and contaminates later epochs.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..autograd import instrument as _instrument
from ..telemetry.trace import current_tracer
from .findings import Finding, Report

__all__ = [
    "state_fingerprint",
    "SharedStateProbe",
    "BackendTrace",
    "run_backend",
    "audit_determinism",
    "DEFAULT_BACKENDS",
]

DEFAULT_BACKENDS = ("serial", "thread", "process")


def state_fingerprint(optimizer, model=None) -> str:
    """sha256 over the optimizer's full state dict (sorted keys) plus the
    model weight vector: two runs share a fingerprint iff their training
    state is bit-identical."""
    h = hashlib.sha256()
    for key in sorted(optimizer.state_dict()):
        arr = np.ascontiguousarray(optimizer.state_dict()[key])
        h.update(key.encode())
        h.update(arr.tobytes())
    if model is not None:
        h.update(np.ascontiguousarray(model.params.flatten()).tobytes())
    return h.hexdigest()


class SharedStateProbe:
    """Records the write epochs of a ``KalmanState`` instance.

    Wraps ``update`` (as an *instance* attribute, so other states are
    untouched): each call records the writer thread and checks no other
    call is concurrently inside -- P writes must be serialized on a
    single thread for the replicated-filter argument to hold.
    """

    def __init__(self, kalman):
        self.kalman = kalman
        self.writer_threads: set[int] = set()
        self.write_epochs = 0
        self.overlaps = 0
        self._inside = 0
        self._lock = threading.Lock()
        self._orig = kalman.update

        def probed_update(g_flat, error, scale):
            with self._lock:
                if self._inside:
                    self.overlaps += 1
                self._inside += 1
                self.writer_threads.add(threading.get_ident())
                self.write_epochs += 1
            try:
                return self._orig(g_flat, error, scale)
            finally:
                with self._lock:
                    self._inside -= 1

        kalman.update = probed_update

    def uninstall(self) -> None:
        self.kalman.update = self._orig


@dataclass
class BackendTrace:
    """Everything one backend run produced that the auditor compares."""

    backend: str
    fingerprints: list = field(default_factory=list)
    force_abes: list = field(default_factory=list)
    findings: list = field(default_factory=list)
    write_epochs: int = 0
    writer_threads: int = 0
    overlaps: int = 0


def run_backend(
    backend: str,
    dataset,
    cfg,
    world_size: int = 4,
    steps: int = 20,
    seed: int = 7,
    batch_size: int = 4,
    compiled: bool = False,
    fused_env: "bool | None" = None,
) -> BackendTrace:
    """Train ``steps`` FEKF steps under one executor backend, recording a
    per-step state fingerprint and probing the determinism mechanisms.

    ``compiled=True`` certifies the tape-compiled replay path: the
    engine only traces the autograd descriptor (``fused_env=False``
    unless overridden), so plans replay instead of silently disabling.
    """
    from ..model import DeePMD, make_batch
    from ..optim import KalmanConfig
    from ..parallel import DistributedFEKF

    if fused_env is None:
        fused_env = not compiled
    trace = BackendTrace(backend=backend)
    model = DeePMD.for_dataset(dataset, cfg, seed=1)
    dist = DistributedFEKF(
        model,
        world_size=world_size,
        kalman_cfg=KalmanConfig(blocksize=1024, fused_update=True),
        seed=seed,
        executor=backend,
        fused_env=fused_env,
        compiled=compiled,
    )
    probe = SharedStateProbe(dist.kalman)
    batch = make_batch(dataset, np.arange(batch_size), cfg)
    try:
        for step in range(steps):
            stats = dist.step_batch(batch)
            trace.force_abes.append(float(stats["force_abe"]))
            trace.fingerprints.append(state_fingerprint(dist, model))
            _probe_rank_order(dist, trace, step)
    finally:
        probe.uninstall()
        dist.close()
    trace.write_epochs = probe.write_epochs
    trace.writer_threads = len(probe.writer_threads)
    trace.overlaps = probe.overlaps
    _probe_sink_leak(trace)
    return trace


def _probe_rank_order(dist, trace: BackendTrace, step: int) -> None:
    """One ``get_weights`` round: results must come back in rank order
    and every replica must hold the parent's weights bit-for-bit."""
    results = dist.executor.broadcast("get_weights")
    parent = dist.model.params.flatten()
    for i, res in enumerate(results):
        if res.telemetry.rank != i:
            trace.findings.append(Finding(
                rule="rank-order",
                message=f"[{trace.backend}] step {step}: result slot {i} "
                        f"carries rank {res.telemetry.rank}; the reduction "
                        f"would fold ranks out of order",
                context={"backend": trace.backend, "step": step, "slot": i,
                         "rank": res.telemetry.rank},
            ))
        elif not np.array_equal(res.payload, parent):
            trace.findings.append(Finding(
                rule="replica-sync",
                message=f"[{trace.backend}] step {step}: rank {i} replica "
                        f"weights diverged from the parent (delta broadcast "
                        f"lost or misapplied)",
                context={"backend": trace.backend, "step": step, "rank": i},
            ))


def _probe_sink_leak(trace: BackendTrace) -> None:
    leaked = len(_instrument._TLS.sinks)
    if leaked:
        trace.findings.append(Finding(
            rule="sink-leak",
            message=f"[{trace.backend}] {leaked} kernel-launch sink(s) left "
                    f"on the main thread's stack after the run",
            context={"backend": trace.backend, "sinks": leaked},
        ))
    if current_tracer() is not None:
        trace.findings.append(Finding(
            rule="sink-leak",
            message=f"[{trace.backend}] a tracer is still installed on the "
                    f"main thread after the run",
            context={"backend": trace.backend},
        ))


def audit_determinism(
    world_size: int = 4,
    steps: int = 20,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    dataset=None,
    cfg=None,
    seed: int = 7,
    compiled: bool = False,
) -> Report:
    """Run the full audit and return a :class:`Report`.

    The first backend in ``backends`` is the reference trajectory
    (conventionally ``serial``); every other backend must reproduce its
    per-step fingerprints bit-for-bit.  With ``compiled=True`` every
    backend trains through the tape-compiled replay engine, certifying
    that fused plans preserve the bit-identity guarantee.
    """
    report = Report(tool="determinism")
    if dataset is None or cfg is None:
        from ..data import generate_dataset
        from ..model import DeePMDConfig

        if dataset is None:
            dataset = generate_dataset(
                "Cu", frames_per_temperature=2, size="small",
                equilibration_steps=8, stride=2,
            )
        if cfg is None:
            cfg = DeePMDConfig.scaled_down(rcut=3.5, nmax=16)

    traces: list[BackendTrace] = []
    for backend in backends:
        traces.append(run_backend(
            backend, dataset, cfg, world_size=world_size, steps=steps,
            seed=seed, compiled=compiled,
        ))

    for check in ("bit-identical-p", "rank-order", "replica-sync",
                  "single-writer-p", "sink-leak"):
        report.checks_run.append(check)

    ref = traces[0]
    for trace in traces:
        report.findings.extend(trace.findings)
        if trace.writer_threads > 1:
            report.add(Finding(
                rule="single-writer-p",
                message=f"[{trace.backend}] P was written from "
                        f"{trace.writer_threads} distinct threads; the "
                        f"Kalman update must stay on the parent thread",
                context={"backend": trace.backend,
                         "threads": trace.writer_threads},
            ))
        if trace.overlaps:
            report.add(Finding(
                rule="single-writer-p",
                message=f"[{trace.backend}] {trace.overlaps} overlapping "
                        f"entries into KalmanState.update (write epochs "
                        f"are not disjoint)",
                context={"backend": trace.backend, "overlaps": trace.overlaps},
            ))
        if trace is ref:
            continue
        for step, (a, b) in enumerate(zip(ref.fingerprints, trace.fingerprints)):
            if a != b:
                report.add(Finding(
                    rule="bit-identical-p",
                    message=f"[{trace.backend}] state fingerprint diverged "
                            f"from {ref.backend} at step {step} "
                            f"({b[:12]} != {a[:12]})",
                    context={"backend": trace.backend, "step": step},
                ))
                break  # every later step differs too; report the first

    report.metrics["world_size"] = world_size
    report.metrics["steps"] = steps
    report.metrics["backends"] = ",".join(t.backend for t in traces)
    report.metrics["compiled"] = int(compiled)
    report.metrics["write_epochs"] = ref.write_epochs
    report.metrics["fingerprints_compared"] = sum(
        len(t.fingerprints) for t in traces[1:]
    )
    if ref.fingerprints:
        report.metrics["final_fingerprint"] = ref.fingerprints[-1][:16]
    return report
