"""Dynamic concurrency certification scenarios.

Each scenario drives a real subsystem under ``capture(kind="locks")``
and ``capture(kind="races")`` and folds the recorder / race-checker
findings into one :class:`~repro.analysis.findings.Report`:

``queues``
    Pure-primitive smoke: a two-stage producer/consumer pipeline over
    :class:`repro.serve.BoundedWorkQueue` with heartbeats — fast enough
    for every CI run, exercises queue + registry lock nesting.
``serve``
    A tiny :class:`repro.serve.InferenceService` (thread executor,
    2 ranks) under concurrent clients with a mid-traffic hot swap — the
    swap-lock → batch-cond nesting is the one real lock order on the
    serving path.
``online``
    The full closed loop (explore/gate/label/train stages over bounded
    queues, live service hot swap) — the deadlock-free certification the
    ``concurrency-smoke`` CI job uploads a lock graph for.

A scenario passes when the lock-order graph is acyclic and the race
checker saw no guarded access without its declared lock.  Heavy imports
stay inside the scenario bodies (same discipline as
``analysis.determinism``) so importing this module is cheap and free of
cycles.

``run_scenario`` also accepts a *path* to a Python file defining
``run()`` — the hook the seeded deadlock fixture (and any out-of-tree
scenario) uses.
"""

from __future__ import annotations

import importlib.util
import threading
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..findings import Finding, Report

__all__ = ["SCENARIOS", "run_scenario"]


def _scenario_queues() -> Dict[str, float]:
    from ...serve import BoundedWorkQueue
    from ...telemetry.monitor import HeartbeatRegistry

    stage_a = BoundedWorkQueue(8, name="smoke-a")
    stage_b = BoundedWorkQueue(8, name="smoke-b")
    beats = HeartbeatRegistry()
    items = 200
    done = []

    def producer(k: int):
        beats.register(f"producer-{k}")
        for j in range(items // 2):
            stage_a.put((k, j), timeout=5.0)
            beats.beat(f"producer-{k}")
        beats.done(f"producer-{k}")

    def relay():
        beats.register("relay")
        while True:
            got = stage_a.get(timeout=0.05)
            if got is None:
                if stage_a.closed and stage_a.drained():
                    break
                continue
            stage_b.put(got, timeout=5.0)
            beats.beat("relay")
        stage_b.close()
        beats.done("relay")

    def consumer():
        beats.register("consumer")
        while True:
            got = stage_b.get(timeout=0.05)
            if got is None:
                if stage_b.closed and stage_b.drained():
                    break
                continue
            done.append(got)
            beats.beat("consumer")
        beats.done("consumer")

    threads = [
        threading.Thread(target=producer, args=(0,), daemon=True),
        threading.Thread(target=producer, args=(1,), daemon=True),
        threading.Thread(target=relay, daemon=True),
        threading.Thread(target=consumer, daemon=True),
    ]
    for t in threads:
        t.start()
    threads[0].join(timeout=30.0)
    threads[1].join(timeout=30.0)
    stage_a.close()
    for t in threads[2:]:
        t.join(timeout=30.0)
    if len(done) != items:
        raise RuntimeError(
            f"queues scenario lost items: {len(done)}/{items} delivered"
        )
    return {"items": float(len(done)), "heartbeats": float(len(beats.ages()))}


def _scenario_serve() -> Dict[str, float]:
    import numpy as np

    from ...data import generate_dataset
    from ...model import DeePMD, DeePMDConfig, ModelSession
    from ...serve import InferenceService, ServeConfig

    dataset = generate_dataset(
        "Cu", frames_per_temperature=2, size="small",
        equilibration_steps=8, stride=2,
    )
    cfg = DeePMDConfig.scaled_down(rcut=3.5, nmax=16)
    model = DeePMD.for_dataset(dataset, cfg, seed=3)
    swap_state = model.state_dict()
    frames = [
        np.ascontiguousarray(dataset.positions[t])
        for t in range(min(dataset.n_frames, 6))
    ]
    clients, per_client = 3, 6
    errors = []

    service = InferenceService(
        ModelSession(model),
        ServeConfig(max_batch=4, max_delay_s=0.002, executor="thread",
                    world_size=2, cache_predictions=False),
    )

    def client(k: int):
        for j in range(per_client):
            try:
                service.predict(
                    frames[(k + j) % len(frames)], dataset.species,
                    dataset.cell, timeout=30.0,
                )
            except Exception as exc:  # surfaced as a scenario finding
                errors.append(f"client-{k}: {exc!r}")

    with service:
        threads = [
            threading.Thread(target=client, args=(k,), daemon=True,
                             name=f"smoke-client-{k}")
            for k in range(clients)
        ]
        for t in threads:
            t.start()
        version = service.swap(swap_state)  # hot swap mid-traffic
        for t in threads:
            t.join(timeout=60.0)
    if errors:
        raise RuntimeError("; ".join(errors[:3]))
    return {
        "requests": float(clients * per_client),
        "swapped_version": float(version),
    }


def _scenario_online() -> Dict[str, float]:
    from ...data import SYSTEMS, generate_dataset
    from ...model import DeePMDConfig, ModelEnsemble
    from ...online import OnlineConfig, OnlineLearner

    dataset = generate_dataset(
        "Cu", frames_per_temperature=3, size="small",
        equilibration_steps=8, stride=2,
    )
    train, test = dataset.split(0.75, seed=0)
    cfg = DeePMDConfig.scaled_down(rcut=3.5, nmax=16)
    ensemble = ModelEnsemble.for_dataset(train, cfg, n_models=2, seed=1)
    spec = SYSTEMS["Cu"]
    _, _, _, potential = spec.build("small")
    ocfg = OnlineConfig(
        md_steps=20, sample_every=10, epochs_per_round=1,
        batch_size=4, max_new_frames=4, select_lo=0.0,
        target_swaps=1, max_segments=6, eval_frames=8,
    )
    learner = OnlineLearner(
        ensemble, potential, dataset.species,
        spec.masses(dataset.species), dataset.cell,
        cfg=ocfg, initial_data=train, holdout=test, seed=0,
    )
    try:
        result = learner.run(train.positions[0], temperature=300.0)
    finally:
        learner.close()
    return {
        "segments": float(result.segments),
        "swaps": float(len(result.swaps)),
    }


SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {
    "queues": _scenario_queues,
    "serve": _scenario_serve,
    "online": _scenario_online,
}


def _load_scenario_file(path: Path) -> Callable[[], Optional[dict]]:
    spec = importlib.util.spec_from_file_location(
        f"_concurrency_scenario_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot import scenario file {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    run = getattr(module, "run", None)
    if not callable(run):
        raise ValueError(f"scenario file {path} defines no run() callable")
    return run


def run_scenario(
    name: str,
    held_threshold_s: Optional[float] = None,
) -> Tuple[Report, dict]:
    """Run one scenario under lock-order + race capture.

    ``name`` is a built-in scenario name (:data:`SCENARIOS`) or a path
    to a Python file defining ``run()``.  Returns ``(report, graph)``
    where ``graph`` is the JSON-ready lock-order graph.
    """
    from ...autograd.capture import capture

    if name in SCENARIOS:
        body: Callable = SCENARIOS[name]
        label = name
    else:
        path = Path(name)
        if not path.exists():
            raise ValueError(
                f"unknown scenario {name!r}; expected one of "
                f"{sorted(SCENARIOS)} or a path to a file defining run()"
            )
        body = _load_scenario_file(path)
        label = path.stem

    report = Report(tool="concurrency-scenario",
                    checks_run=[f"scenario:{label}"])
    kwargs = {} if held_threshold_s is None \
        else {"held_threshold_s": held_threshold_s}
    error: Optional[str] = None
    with capture("locks", **kwargs) as recorder:
        with capture("races") as checker:
            try:
                metrics = body() or {}
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                metrics = {}
    report.extend(recorder.report())
    report.extend(checker.report())
    if error is not None:
        report.add(Finding(
            rule="scenario-error",
            message=f"scenario {label!r} raised: {error}",
            context={"scenario": label},
        ))
    for key, value in metrics.items():
        report.metrics[f"{label}.{key}"] = value
    return report, recorder.graph()
