"""Static AST lock-discipline lint (the concurrency pillar's layer 1).

Extends the PR-4 project lint with four thread-safety rules, sharing its
``Finding``/``Report`` model and its ``# lint: disable=<rule>``
suppression convention:

``unguarded-shared-field``
    In a class that starts threads, an instance attribute assigned from
    more than one *thread entry point* (``Thread(target=...)`` targets,
    executor-submitted / source-registered bound methods, and the
    external-caller entry through public methods) must have every write
    site inside ``with self.<lock>:`` for a *common* lock.  Methods
    whose name ends in ``_locked`` declare "caller holds the lock" and
    are compatible with any common lock.
``untracked-lock``
    Bare ``threading.Lock()`` / ``threading.RLock()`` / zero-argument
    ``threading.Condition()`` constructed inside the concurrency-
    sensitive subsystems (``serve/``, ``online/``,
    ``telemetry/monitor/``).  These are invisible to the lock-order
    recorder; use :class:`~repro.analysis.concurrency.TrackedLock` /
    ``TrackedRLock`` (or ``Condition(TrackedRLock(...))``).
``unbounded-wait``
    ``<thread>.join()`` without a timeout on a thread constructed
    without ``daemon=True`` (a wedged worker then hangs shutdown
    forever), and bare ``<queue>.get()`` with no timeout on queue-like
    receivers.
``sleep-poll``
    ``time.sleep`` inside a ``while`` loop whose body never calls a
    ``.wait(...)`` — a busy-wait that should block on a
    ``Condition``/``Event`` instead (wakes late *and* burns a core).

The entry-point analysis is deliberately syntactic: roots are bound
methods that *escape* (referenced without being called — thread
targets, ``submit(self.x)``, ``add_source(.., self.x)``) plus nested
``def``s passed as ``Thread(target=...)``; reachability is the
intra-class ``self.method()`` call graph.  That is precise enough to
have found real unguarded fields in ``repro.online``/``repro.serve``
and cheap enough to gate CI.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..astlint import _suppressed
from ..findings import Finding, Report

__all__ = ["ConcurrencyLinter", "lint_concurrency", "CONCURRENCY_RULES"]

CONCURRENCY_RULES = (
    "unguarded-shared-field",
    "untracked-lock",
    "unbounded-wait",
    "sleep-poll",
)

#: path components whose files must use tracked locks
_LOCK_SCOPE = {"serve", "online", "monitor"}
_RAW_LOCK_CTORS = {"Lock", "RLock", "Condition"}
_LOCK_CTORS = _RAW_LOCK_CTORS | {"TrackedLock", "TrackedRLock"}
_LOCKISH_RE = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_QUEUEISH_RE = re.compile(r"queue|(^|_)q$", re.IGNORECASE)
#: sentinel lockset of ``*_locked`` methods: guarded by "whatever the
#: caller holds" — compatible with any concrete common lock
_UNIVERSAL = "*"


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _flat_targets(target: ast.AST):
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flat_targets(elt)
    else:
        yield target


def _is_thread_ctor(func: ast.AST) -> bool:
    chain = _attr_chain(func)
    return chain in (("threading", "Thread"), ("Thread",))


def _lock_ctor(func: ast.AST) -> Optional[str]:
    chain = _attr_chain(func)
    if chain and chain[-1] in _LOCK_CTORS:
        return chain[-1]
    return None


class _FileLint:
    def __init__(self, path: Path, display: str, lines: Sequence[str],
                 report: Report):
        self.path = path
        self.display = display
        self.lines = lines
        self.report = report
        self.lock_scope = bool(_LOCK_SCOPE & set(path.parts))
        self.threading_names: Set[str] = set()
        self.time_sleep_names: Set[str] = set()
        #: target chain -> constructed-as-daemon (lenient: True wins)
        self.thread_vars: Dict[Tuple[str, ...], bool] = {}

    def flag(self, rule: str, node: ast.AST, message: str, **context) -> None:
        if _suppressed(self.lines, node.lineno, rule):
            return
        self.report.add(Finding(
            rule=rule, message=message, file=self.display,
            line=node.lineno, context=context,
        ))

    # ------------------------------------------------------------------
    def run(self, tree: ast.AST) -> None:
        self._collect_imports(tree)
        self._collect_thread_vars(tree)
        _ModuleRules(self).visit(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                _SharedFieldAnalysis(self, node).run()

    def _collect_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "threading":
                    self.threading_names |= {a.asname or a.name
                                             for a in node.names}
                elif node.module == "time":
                    self.time_sleep_names |= {
                        a.asname or a.name for a in node.names
                        if a.name == "sleep"
                    }

    def _collect_thread_vars(self, tree: ast.AST) -> None:
        """Whole-file map of names/attrs assigned ``Thread(...)`` and
        whether the construction was daemonic (``x.daemon = True`` too)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Call) and _is_thread_ctor(value.func):
                    daemon = any(
                        kw.arg == "daemon"
                        and isinstance(kw.value, ast.Constant)
                        and bool(kw.value.value)
                        for kw in value.keywords
                    )
                    for tgt in node.targets:
                        for leaf in _flat_targets(tgt):
                            chain = _attr_chain(leaf)
                            if chain:
                                prev = self.thread_vars.get(chain, False)
                                self.thread_vars[chain] = prev or daemon
                else:
                    for tgt in node.targets:
                        chain = _attr_chain(tgt)
                        if (chain and chain[-1] == "daemon"
                                and isinstance(value, ast.Constant)
                                and bool(value.value)):
                            self.thread_vars[chain[:-1]] = True


class _ModuleRules(ast.NodeVisitor):
    """untracked-lock, unbounded-wait, sleep-poll (whole-file rules)."""

    def __init__(self, lf: _FileLint):
        self.lf = lf
        self.while_stack: List[ast.While] = []

    # functions reset the while stack: a sleep inside a nested def is
    # not part of the enclosing loop's iteration
    def visit_FunctionDef(self, node):
        saved, self.while_stack = self.while_stack, []
        self.generic_visit(node)
        self.while_stack = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_While(self, node: ast.While):
        self.while_stack.append(node)
        self.generic_visit(node)
        self.while_stack.pop()

    def visit_Call(self, node: ast.Call):
        lf = self.lf
        chain = _attr_chain(node.func)
        if chain:
            self._check_untracked_lock(node, chain)
            self._check_unbounded_wait(node, chain)
            self._check_sleep_poll(node, chain)
        self.generic_visit(node)

    # -- untracked-lock ------------------------------------------------
    def _check_untracked_lock(self, node: ast.Call,
                              chain: Tuple[str, ...]) -> None:
        lf = self.lf
        if not lf.lock_scope:
            return
        name = chain[-1]
        if name not in _RAW_LOCK_CTORS:
            return
        qualified = len(chain) == 2 and chain[0] == "threading"
        bare = len(chain) == 1 and name in lf.threading_names
        if not (qualified or bare):
            return
        if name == "Condition" and (node.args or node.keywords):
            return  # Condition(tracked_lock) is the sanctioned pattern
        lf.flag(
            "untracked-lock", node,
            f"bare threading.{name}() in concurrency-sensitive code; use "
            "TrackedLock/TrackedRLock (repro.analysis.concurrency) so the "
            "lock-order recorder and race checker can observe it",
            ctor=name,
        )

    # -- unbounded-wait ------------------------------------------------
    def _check_unbounded_wait(self, node: ast.Call,
                              chain: Tuple[str, ...]) -> None:
        lf = self.lf
        if node.args or node.keywords or len(chain) < 2:
            return  # only zero-argument calls are unbounded
        receiver, method = chain[:-1], chain[-1]
        if method == "join":
            if lf.thread_vars.get(receiver) is False:  # known non-daemon
                lf.flag(
                    "unbounded-wait", node,
                    f"{'.'.join(receiver)}.join() without timeout on a "
                    "non-daemon thread; a wedged worker hangs shutdown "
                    "forever — pass a timeout or make the thread daemonic",
                    receiver=".".join(receiver),
                )
        elif method == "get" and _QUEUEISH_RE.search(receiver[-1]):
            lf.flag(
                "unbounded-wait", node,
                f"unbounded {'.'.join(receiver)}.get(); pass a timeout so "
                "a stalled producer cannot wedge this consumer silently",
                receiver=".".join(receiver),
            )

    # -- sleep-poll ----------------------------------------------------
    def _check_sleep_poll(self, node: ast.Call,
                          chain: Tuple[str, ...]) -> None:
        lf = self.lf
        is_sleep = chain == ("time", "sleep") or (
            len(chain) == 1 and chain[0] in lf.time_sleep_names
        )
        if not is_sleep or not self.while_stack:
            return
        loop = self.while_stack[-1]
        for inner in ast.walk(loop):
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "wait"):
                return  # the loop blocks on a Condition/Event already
        lf.flag(
            "sleep-poll", node,
            "time.sleep inside a while loop with no .wait(): busy-polling "
            "wakes late and burns a core — block on a Condition/Event "
            "with a timeout instead",
        )


class _SharedFieldAnalysis:
    """``unguarded-shared-field`` over one class definition."""

    def __init__(self, lf: _FileLint, cls: ast.ClassDef):
        self.lf = lf
        self.cls = cls
        self.methods: Dict[str, ast.AST] = {
            stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def run(self) -> None:
        if not self.methods or not self._creates_threads():
            return
        lock_attrs = self._lock_attrs()
        roots = self._thread_roots()
        if not roots:
            return
        nested_ids = {id(node) for key, node in roots.items() if "<" in key}
        scopes: Dict[str, ast.AST] = {
            name: node for name, node in self.methods.items()
            if name != "__init__"
        }
        scopes.update({key: node for key, node in roots.items()
                       if "<" in key})
        calls: Dict[str, Set[str]] = {}
        writes: Dict[str, List[Tuple[str, int, FrozenSet[str]]]] = {}
        for key, node in scopes.items():
            universal = node.name.endswith("_locked")
            calls[key], writes[key] = _scan_scope(
                node, nested_ids, lock_attrs, universal
            )

        def reach(entries) -> Set[str]:
            out: Set[str] = set()
            frontier = [e for e in entries if e in scopes]
            while frontier:
                key = frontier.pop()
                if key in out:
                    continue
                out.add(key)
                frontier.extend(
                    callee for callee in calls.get(key, ())
                    if callee in scopes and callee not in out
                )
            return out

        root_reach = {key: reach([key]) for key in roots}
        external = reach(
            name for name in self.methods
            if name != "__init__"
            and (not name.startswith("_")
                 or (name.startswith("__") and name.endswith("__")))
        )

        sites_by_attr: Dict[str, List[Tuple[str, int, FrozenSet[str]]]] = {}
        for key in scopes:
            for attr, lineno, guards in writes[key]:
                sites_by_attr.setdefault(attr, []).append(
                    (key, lineno, guards)
                )

        for attr, sites in sorted(sites_by_attr.items()):
            if attr in lock_attrs:
                continue
            entry_points: Set[str] = set()
            for key, _, _ in sites:
                entry_points.update(
                    root for root, reached in root_reach.items()
                    if key in reached
                )
                if key in external:
                    entry_points.add("<external>")
            if len(entry_points) < 2:
                continue
            self._check_guards(attr, sites, sorted(entry_points))

    def _check_guards(self, attr, sites, entry_points) -> None:
        where = ", ".join(entry_points)
        unguarded = [(key, lineno) for key, lineno, guards in sites
                     if not guards]
        if unguarded:
            key, lineno = unguarded[0]
            self.lf.flag(
                "unguarded-shared-field",
                _Loc(lineno),
                f"'self.{attr}' is written from {len(entry_points)} thread "
                f"entry points ({where}) but {len(unguarded)} write site(s) "
                "hold no lock; guard every write with a common TrackedLock",
                attr=attr, entry_points=entry_points,
                unguarded_sites=[ln for _, ln in unguarded],
            )
            return
        concrete = [guards for _, _, guards in sites
                    if _UNIVERSAL not in guards]
        if not concrete:
            return
        common = set(concrete[0])
        for guards in concrete[1:]:
            common &= guards
        if not common:
            key, lineno, _ = sites[0]
            self.lf.flag(
                "unguarded-shared-field",
                _Loc(lineno),
                f"'self.{attr}' is written from {len(entry_points)} thread "
                f"entry points ({where}) under *different* locks — no "
                "common lock covers all write sites",
                attr=attr, entry_points=entry_points,
            )

    # ------------------------------------------------------------------
    def _creates_threads(self) -> bool:
        return any(
            isinstance(node, ast.Call) and _is_thread_ctor(node.func)
            for node in ast.walk(self.cls)
        )

    def _lock_attrs(self) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(self.cls):
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           ast.Call):
                if _lock_ctor(node.value.func):
                    for tgt in node.targets:
                        chain = _attr_chain(tgt)
                        if chain and chain[0] == "self" and len(chain) == 2:
                            out.add(chain[1])
        return out

    def _thread_roots(self) -> Dict[str, ast.AST]:
        """Thread entry scopes: escaping bound methods + nested
        ``Thread(target=<nested def>)`` targets."""
        call_funcs = {
            id(node.func) for node in ast.walk(self.cls)
            if isinstance(node, ast.Call)
        }
        roots: Dict[str, ast.AST] = {}
        for mname, mnode in self.methods.items():
            for node in ast.walk(mnode):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                        and isinstance(node.ctx, ast.Load)
                        and node.attr in self.methods
                        and id(node) not in call_funcs):
                    roots[node.attr] = self.methods[node.attr]
                if isinstance(node, ast.Call) and _is_thread_ctor(node.func):
                    for kw in node.keywords:
                        if kw.arg == "target" and isinstance(kw.value,
                                                             ast.Name):
                            nested = _find_nested_def(mnode, kw.value.id)
                            if nested is not None:
                                roots[f"{mname}.<{kw.value.id}>"] = nested
        return roots


class _Loc:
    """Minimal node stand-in carrying just a line number for flag()."""

    __slots__ = ("lineno",)

    def __init__(self, lineno: int):
        self.lineno = lineno


def _find_nested_def(scope: ast.AST, name: str) -> Optional[ast.AST]:
    for node in ast.walk(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name and node is not scope:
            return node
    return None


def _scan_scope(scope, skip_ids, lock_attrs, universal):
    """(called self-methods, write sites) for one thread-entry scope.

    A write site is ``(attr, lineno, guards)`` where ``guards`` is the
    frozenset of lock names lexically held via ``with`` at that point
    (``{_UNIVERSAL}`` inside ``*_locked`` methods).  Nested defs that
    are thread roots themselves are skipped (they are their own scope);
    other nested defs are merged into the enclosing scope.
    """
    called: Set[str] = set()
    sites: List[Tuple[str, int, FrozenSet[str]]] = []
    base: FrozenSet[str] = frozenset({_UNIVERSAL}) if universal \
        else frozenset()

    def guard_names(node: ast.With) -> Set[str]:
        names: Set[str] = set()
        for item in node.items:
            chain = _attr_chain(item.context_expr)
            if chain is None:
                continue
            if chain[0] == "self" and len(chain) == 2:
                name = chain[1]
            elif len(chain) == 1:
                name = chain[0]
            else:
                continue
            if name in lock_attrs or _LOCKISH_RE.search(name):
                names.add(name)
        return names

    def rec(node: ast.AST, guards: FrozenSet[str]) -> None:
        if id(node) in skip_ids:
            return
        if isinstance(node, ast.With):
            inner = guards | guard_names(node)
            for child in node.body:
                rec(child, inner)
            return
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[0] == "self" and len(chain) == 2:
                called.add(chain[1])
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for tgt in targets:
                for leaf in _flat_targets(tgt):
                    chain = _attr_chain(leaf)
                    if chain and chain[0] == "self" and len(chain) == 2:
                        sites.append((chain[1], leaf.lineno, guards))
        for child in ast.iter_child_nodes(node):
            rec(child, guards)

    for stmt in scope.body:
        rec(stmt, base)
    return called, sites


# --------------------------------------------------------------------------
# driver (mirrors astlint.ProjectLinter)
# --------------------------------------------------------------------------

class ConcurrencyLinter:
    """Run the four concurrency rules over files/directories.

    With no paths, lints the installed ``repro`` package source.
    """

    def __init__(self, paths: Optional[Sequence[Path]] = None,
                 display_base: Optional[Path] = None):
        if paths is None:
            paths = [Path(__file__).resolve().parents[2]]  # the repro pkg
        self.paths = [Path(p) for p in paths]
        self.display_base = display_base

    def _iter_files(self) -> List[Path]:
        files: List[Path] = []
        for p in self.paths:
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
        return files

    def _display(self, path: Path) -> str:
        base = self.display_base
        if base is not None:
            try:
                return str(path.resolve().relative_to(Path(base).resolve()))
            except ValueError:
                pass
        return str(path)

    def run(self) -> Report:
        report = Report(tool="concurrency-lint")
        report.checks_run.extend(CONCURRENCY_RULES)
        files = self._iter_files()
        report.metrics["files_scanned"] = len(files)
        for path in files:
            try:
                text = path.read_text()
                tree = ast.parse(text, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.add(Finding(
                    rule="parse-error",
                    message=f"could not parse: {exc}",
                    file=self._display(path),
                    line=getattr(exc, "lineno", None),
                ))
                continue
            _FileLint(
                path, self._display(path), text.splitlines(), report
            ).run(tree)
        return report


def lint_concurrency(paths: Optional[Sequence[Path]] = None,
                     display_base: Optional[Path] = None) -> Report:
    """Convenience wrapper: ``ConcurrencyLinter(paths).run()``."""
    return ConcurrencyLinter(paths, display_base=display_base).run()
