"""repro.analysis.concurrency -- the thread-safety analysis pillar.

Three layers over one ``Finding``/``Report`` model:

* :mod:`lint` -- static AST lock-discipline rules (unguarded shared
  fields, untracked locks, unbounded waits, sleep-polling loops).
* :mod:`locks` -- :class:`TrackedLock`/:class:`TrackedRLock` wrappers
  plus the dynamic :class:`LockOrderRecorder` behind
  ``autograd.capture(kind="locks")``: acquire-order edges per thread,
  cycle detection for lock-order inversions, held-too-long findings.
* :mod:`guard` -- the :class:`Guarded` field annotation and the
  :class:`RaceChecker` behind ``capture(kind="races")``: any access to
  a declared field without its lock held is a ``guarded-race`` finding.

:mod:`scenarios` certifies real subsystems (queues / serve / online)
deadlock-cycle-free; everything runs under
``python -m repro.analysis concurrency``.
"""

from .guard import Guarded, RaceChecker, install_checker, uninstall_checker
from .lint import CONCURRENCY_RULES, ConcurrencyLinter, lint_concurrency
from .locks import (
    GLOBAL_REGISTRY,
    LockOrderRecorder,
    LockRegistry,
    TrackedLock,
    TrackedRLock,
    current_held,
    install_recorder,
    uninstall_recorder,
)
from .scenarios import SCENARIOS, run_scenario

__all__ = [
    "TrackedLock",
    "TrackedRLock",
    "LockRegistry",
    "GLOBAL_REGISTRY",
    "LockOrderRecorder",
    "install_recorder",
    "uninstall_recorder",
    "current_held",
    "Guarded",
    "RaceChecker",
    "install_checker",
    "uninstall_checker",
    "ConcurrencyLinter",
    "lint_concurrency",
    "CONCURRENCY_RULES",
    "SCENARIOS",
    "run_scenario",
]
