"""Tracked lock primitives and the dynamic lock-order recorder.

:class:`TrackedLock` / :class:`TrackedRLock` are drop-in wrappers around
``threading.Lock`` / ``threading.RLock`` that additionally know

* their **name** (uniquified through the process-wide
  :class:`LockRegistry`, so two ``"queue.work"`` instances become
  ``queue.work`` and ``queue.work#2``),
* whether the **current thread holds them** (the static lint's
  ``Guarded`` companion checks this at field-access time), and
* basic **hold statistics** (acquisition count, longest hold) that the
  health plane can read without any recorder installed.

While a :class:`LockOrderRecorder` is installed (usually via
``autograd.capture(kind="locks")``) every first-acquisition of a tracked
lock also records a *lock-order edge* ``held -> acquired`` for each lock
the acquiring thread already holds.  A cycle in that directed graph is a
lock-order inversion: two threads that interleave the involved code
paths can deadlock even if this particular run did not.  The recorder
therefore certifies whole scenarios (serve smoke, online closed loop)
deadlock-cycle-free, which a lucky green test run alone cannot.

The wrappers implement the private ``_is_owned`` /
``_release_save`` / ``_acquire_restore`` protocol that
``threading.Condition`` probes for, so ``Condition(TrackedRLock(...))``
behaves exactly like ``Condition()`` — this is how
:class:`repro.serve.InferenceService` and
:class:`repro.serve.BoundedWorkQueue` adopt tracking without touching
their wait/notify logic.

Overhead discipline: with no recorder installed the per-acquisition cost
is one tuple truthiness test plus held-stack bookkeeping (a thread-local
list append/remove and a ``perf_counter`` stamp).  The serve benchmark
gates the *recorder-on* overhead below 5%; recorder-off tracking is in
the noise.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TrackedLock",
    "TrackedRLock",
    "LockRegistry",
    "GLOBAL_REGISTRY",
    "LockOrderRecorder",
    "install_recorder",
    "uninstall_recorder",
    "current_held",
]


# --------------------------------------------------------------------------
# per-thread held stack + installed recorders
# --------------------------------------------------------------------------

_TLS = threading.local()


def _held_stack() -> List["TrackedLock"]:
    stack = getattr(_TLS, "held", None)
    if stack is None:
        stack = _TLS.held = []
    return stack


def current_held() -> Tuple["TrackedLock", ...]:
    """Tracked locks held by the calling thread, outermost first."""
    return tuple(_held_stack())


#: installed recorders; swapped atomically as a whole tuple so the hot
#: path needs no lock — just a truthiness test on a local read
_RECORDERS: Tuple["LockOrderRecorder", ...] = ()
_RECORDERS_MU = threading.Lock()


def install_recorder(recorder: "LockOrderRecorder") -> None:
    """Install ``recorder`` process-wide (it sees *every* thread)."""
    global _RECORDERS
    with _RECORDERS_MU:
        _RECORDERS = _RECORDERS + (recorder,)


def uninstall_recorder(recorder: "LockOrderRecorder") -> None:
    global _RECORDERS
    with _RECORDERS_MU:
        _RECORDERS = tuple(r for r in _RECORDERS if r is not recorder)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

class LockRegistry:
    """Process-wide name table of live tracked locks.

    Holds weak references only — a tracked lock dies with its owner.
    ``register`` uniquifies names by ever-created count, so cycle
    detection operates on *instances* (two queues named ``queue.work``
    cannot alias into a false self-cycle).
    """

    def __init__(self):
        self._mu = threading.Lock()
        self._live: "weakref.WeakValueDictionary[str, TrackedLock]" = (
            weakref.WeakValueDictionary()
        )
        self._created: Dict[str, int] = {}

    def register(self, lock: "TrackedLock", name: str) -> str:
        with self._mu:
            n = self._created.get(name, 0) + 1
            self._created[name] = n
            unique = name if n == 1 else f"{name}#{n}"
            self._live[unique] = lock
            return unique

    def live(self) -> Dict[str, "TrackedLock"]:
        with self._mu:
            return dict(self._live)

    def health(self) -> Dict[str, Dict[str, float]]:
        """Per-lock stats for the health plane (no recorder needed)."""
        return {
            name: {
                "acquisitions": lock.acquisitions,
                "max_held_s": round(lock.max_held_s, 6),
                "held": lock.locked(),
            }
            for name, lock in sorted(self.live().items())
        }


#: default registry every :class:`TrackedLock` registers with
GLOBAL_REGISTRY = LockRegistry()


# --------------------------------------------------------------------------
# tracked locks
# --------------------------------------------------------------------------

class TrackedLock:
    """A named, observable ``threading.Lock`` (or RLock).

    Drop-in for the stdlib primitives, including as the underlying lock
    of a ``threading.Condition``.  ``reentrant=True`` (or the
    :class:`TrackedRLock` alias) wraps an RLock; recursion is tracked so
    order edges and hold timings count outermost acquire/release pairs
    only.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        reentrant: bool = False,
        registry: Optional[LockRegistry] = None,
    ):
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._reentrant = bool(reentrant)
        base = name if name else f"anon@{id(self):x}"
        self.name = (registry or GLOBAL_REGISTRY).register(self, base)
        #: outermost-hold depth per owning thread ident
        self._depth: Dict[int, int] = {}
        self._t_acquired: Dict[int, float] = {}
        self.acquisitions = 0
        self.max_held_s = 0.0

    # -- core protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if not got:
            return False
        ident = threading.get_ident()
        depth = self._depth.get(ident, 0)
        self._depth[ident] = depth + 1
        if depth == 0:
            self._note_acquired(ident)
        return True

    def release(self) -> None:
        ident = threading.get_ident()
        depth = self._depth.get(ident, 0)
        if depth == 1:
            del self._depth[ident]
            self._note_released(ident)
        elif depth > 1:
            self._depth[ident] = depth - 1
        # not held by us: let the inner lock raise its usual RuntimeError
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._depth)

    def held_by_current_thread(self) -> bool:
        return self._depth.get(threading.get_ident(), 0) > 0

    def __repr__(self):  # pragma: no cover - debugging aid
        kind = "TrackedRLock" if self._reentrant else "TrackedLock"
        return f"<{kind} {self.name!r} depth={dict(self._depth)}>"

    # -- bookkeeping ---------------------------------------------------
    def _note_acquired(self, ident: int) -> None:
        self.acquisitions += 1
        self._t_acquired[ident] = time.perf_counter()
        stack = _held_stack()
        recorders = _RECORDERS
        if recorders:
            for rec in recorders:
                rec.on_acquire(self, stack)
        stack.append(self)

    def _note_released(self, ident: int) -> None:
        stack = _held_stack()
        try:
            stack.remove(self)
        except ValueError:  # released on a thread that never acquired
            pass
        t0 = self._t_acquired.pop(ident, None)
        if t0 is None:
            return
        held_s = time.perf_counter() - t0
        if held_s > self.max_held_s:
            self.max_held_s = held_s
        recorders = _RECORDERS
        if recorders:
            for rec in recorders:
                rec.on_release(self, held_s)

    # -- threading.Condition integration -------------------------------
    # Condition(lock) probes for these; without them its fallback
    # ``_is_owned`` calls ``acquire(0)``, which *succeeds* on an owned
    # reentrant lock and would make ``wait()`` raise "cannot wait on
    # un-acquired lock".
    def _is_owned(self) -> bool:
        return self.held_by_current_thread()

    def _release_save(self):
        ident = threading.get_ident()
        depth = self._depth.pop(ident, 0)
        if depth:
            self._note_released(ident)
        if self._reentrant:
            return (self._inner._release_save(), depth)
        self._inner.release()
        return (None, depth)

    def _acquire_restore(self, state) -> None:
        inner_state, depth = state
        if self._reentrant:
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        ident = threading.get_ident()
        if depth:
            self._depth[ident] = depth
            self._note_acquired(ident)


class TrackedRLock(TrackedLock):
    """Reentrant :class:`TrackedLock` (``threading.RLock`` semantics)."""

    def __init__(self, name: Optional[str] = None, *,
                 registry: Optional[LockRegistry] = None):
        super().__init__(name, reentrant=True, registry=registry)


# --------------------------------------------------------------------------
# lock-order recorder
# --------------------------------------------------------------------------

class LockOrderRecorder:
    """Record acquire/release events into a lock-order graph.

    Nodes are tracked-lock instances (by registry-unique name); a
    directed edge ``A -> B`` means some thread acquired ``B`` while
    holding ``A``.  :meth:`cycles` runs strongly-connected-component
    detection over the edge set — any non-trivial SCC (or self-loop) is
    a lock-order inversion and becomes an error-severity
    ``lock-order-cycle`` finding.  Holds longer than
    ``held_threshold_s`` become warning-severity ``lock-held-too-long``
    findings and are surfaced in :meth:`health` for the monitor plane.

    The recorder's internal mutex is a *leaf*: it is never held while a
    tracked lock is acquired, so installing the recorder cannot itself
    introduce a deadlock.
    """

    def __init__(self, held_threshold_s: float = 1.0):
        if held_threshold_s <= 0.0:
            raise ValueError("held_threshold_s must be > 0")
        self.held_threshold_s = float(held_threshold_s)
        self._mu = threading.Lock()
        #: (src, dst) -> {"count": int, "threads": set[str]}
        self.edges: Dict[Tuple[str, str], Dict[str, object]] = {}
        #: name -> {"acquisitions": int, "max_held_s": float}
        self.nodes: Dict[str, Dict[str, float]] = {}
        self.slow_holds: List[Dict[str, object]] = []
        self.events = 0

    # -- hot-path hooks (called by TrackedLock) ------------------------
    def on_acquire(self, lock: TrackedLock, held: List[TrackedLock]) -> None:
        thread = threading.current_thread().name
        with self._mu:
            self.events += 1
            node = self.nodes.setdefault(
                lock.name, {"acquisitions": 0, "max_held_s": 0.0}
            )
            node["acquisitions"] += 1
            for h in held:
                edge = self.edges.setdefault(
                    (h.name, lock.name), {"count": 0, "threads": set()}
                )
                edge["count"] += 1
                edge["threads"].add(thread)

    def on_release(self, lock: TrackedLock, held_s: float) -> None:
        with self._mu:
            self.events += 1
            node = self.nodes.setdefault(
                lock.name, {"acquisitions": 0, "max_held_s": 0.0}
            )
            if held_s > node["max_held_s"]:
                node["max_held_s"] = held_s
            if held_s > self.held_threshold_s:
                self.slow_holds.append({
                    "lock": lock.name,
                    "held_s": round(held_s, 6),
                    "thread": threading.current_thread().name,
                })

    # -- analysis ------------------------------------------------------
    def _adjacency(self) -> Dict[str, set]:
        with self._mu:
            adj: Dict[str, set] = {}
            for (src, dst) in self.edges:
                adj.setdefault(src, set()).add(dst)
                adj.setdefault(dst, set())
            return adj

    def cycles(self) -> List[List[str]]:
        """Lock-order cycles, each as a closed node path ``[a, b, a]``."""
        adj = self._adjacency()
        out: List[List[str]] = []
        for comp in _tarjan_sccs(adj):
            if len(comp) == 1:
                node = comp[0]
                if node in adj.get(node, ()):
                    out.append([node, node])
                continue
            path = _cycle_in_component(adj, set(comp))
            if path:
                out.append(path)
        out.sort()
        return out

    def graph(self) -> Dict[str, object]:
        """JSON-ready lock-order graph (the CI artifact payload)."""
        with self._mu:
            nodes = [
                {"name": name,
                 "acquisitions": stats["acquisitions"],
                 "max_held_s": round(stats["max_held_s"], 6)}
                for name, stats in sorted(self.nodes.items())
            ]
            edges = [
                {"src": src, "dst": dst, "count": meta["count"],
                 "threads": sorted(meta["threads"])}
                for (src, dst), meta in sorted(self.edges.items())
            ]
        return {
            "schema": "repro.lockgraph/v1",
            "nodes": nodes,
            "edges": edges,
            "cycles": self.cycles(),
            "events": self.events,
        }

    def report(self):
        """Findings view: cycles are errors, slow holds are warnings."""
        from ..findings import Finding, Report

        report = Report(
            tool="lock-order",
            checks_run=["lock-order-cycle", "lock-held-too-long"],
        )
        for cycle in self.cycles():
            report.add(Finding(
                rule="lock-order-cycle",
                message=(
                    "lock-order inversion: "
                    + " -> ".join(cycle)
                    + " (threads interleaving these paths can deadlock)"
                ),
                context={"cycle": cycle},
            ))
        for hold in self.slow_holds:
            report.add(Finding(
                rule="lock-held-too-long",
                severity="warning",
                message=(
                    f"lock {hold['lock']!r} held {hold['held_s']:.3f}s by "
                    f"{hold['thread']} (threshold "
                    f"{self.held_threshold_s:.3f}s)"
                ),
                context=dict(hold),
            ))
        with self._mu:
            report.metrics.update({
                "locks": len(self.nodes),
                "order_edges": len(self.edges),
                "lock_events": self.events,
                "slow_holds": len(self.slow_holds),
            })
        report.metrics["cycles"] = len(self.cycles())
        return report

    def health(self) -> Dict[str, object]:
        """Summary for the health plane / monitor sources."""
        with self._mu:
            worst = max(
                (s["max_held_s"] for s in self.nodes.values()), default=0.0
            )
            return {
                "locks": len(self.nodes),
                "order_edges": len(self.edges),
                "slow_holds": len(self.slow_holds),
                "max_held_s": round(worst, 6),
            }


def _tarjan_sccs(adj: Dict[str, set]) -> List[List[str]]:
    """Iterative Tarjan strongly-connected components."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: set = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(adj):
        if root in index:
            continue
        # frames: (node, iterator over successors)
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(sorted(comp))
    return sccs


def _cycle_in_component(adj: Dict[str, set], comp: set) -> Optional[List[str]]:
    """One concrete cycle path inside a non-trivial SCC."""
    start = sorted(comp)[0]
    path = [start]
    seen = {start}
    node = start
    while True:
        nxt = None
        for cand in sorted(adj.get(node, ())):
            if cand in comp:
                nxt = cand
                break
        if nxt is None:  # pragma: no cover - SCC guarantees a successor
            return None
        if nxt == start:
            path.append(start)
            return path
        if nxt in seen:
            # close the loop at the first revisit
            k = path.index(nxt)
            return path[k:] + [nxt]
        seen.add(nxt)
        path.append(nxt)
        node = nxt
