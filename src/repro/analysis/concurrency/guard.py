"""Annotated race checking: ``Guarded`` fields and the ``RaceChecker``.

:class:`Guarded` turns the implicit convention "``self._closed`` is
protected by ``self._cond``" into a checkable declaration::

    self._closed = Guarded(False, self._cond_lock, name="queue.closed")
    ...
    with self._cond:
        if self._closed.get():
            ...

Reads go through :meth:`Guarded.get`, writes through
:meth:`Guarded.set` / :meth:`Guarded.swap`.  With no checker installed
the cost is one module-global truthiness test per access.  Inside
``autograd.capture(kind="races")`` a process-wide :class:`RaceChecker`
records, for every access, the thread, the access mode, and whether the
declared lock was actually held — any access without the lock is an
error-severity ``guarded-race`` finding.  The existing
``FaultInjector`` stall schedules widen race windows, so the watchdog
fault-injection tests double as race probes: the healthy twins must
report zero findings.

This is deliberately *annotated* checking, not a happens-before
vector-clock engine: it only validates declared invariants, which keeps
it cheap enough to run inside ordinary tests.
"""

from __future__ import annotations

import threading
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from .locks import TrackedLock

__all__ = ["Guarded", "RaceChecker", "install_checker", "uninstall_checker"]

T = TypeVar("T")

#: installed checkers; swapped as a whole tuple (same discipline as the
#: lock-order recorder) so the unchecked fast path is branch + load
_CHECKERS: Tuple["RaceChecker", ...] = ()
_CHECKERS_MU = threading.Lock()


def install_checker(checker: "RaceChecker") -> None:
    global _CHECKERS
    with _CHECKERS_MU:
        _CHECKERS = _CHECKERS + (checker,)


def uninstall_checker(checker: "RaceChecker") -> None:
    global _CHECKERS
    with _CHECKERS_MU:
        _CHECKERS = tuple(c for c in _CHECKERS if c is not checker)


class Guarded(Generic[T]):
    """A field that declares which :class:`TrackedLock` protects it."""

    __slots__ = ("_value", "_lock", "_name")

    def __init__(self, value: T, lock: TrackedLock, name: str):
        if not isinstance(lock, TrackedLock):
            raise TypeError(
                "Guarded requires a TrackedLock/TrackedRLock guard, got "
                f"{type(lock).__name__}"
            )
        self._value = value
        self._lock = lock
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def lock(self) -> TrackedLock:
        return self._lock

    def get(self) -> T:
        if _CHECKERS:
            _note(self, "read")
        return self._value

    def set(self, value: T) -> None:
        if _CHECKERS:
            _note(self, "write")
        self._value = value

    def swap(self, value: T) -> T:
        """Atomically-intended read-modify-write (still lock-guarded)."""
        if _CHECKERS:
            _note(self, "write")
        old = self._value
        self._value = value
        return old

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<Guarded {self._name!r} by {self._lock.name!r}>"


def _note(guarded: Guarded, mode: str) -> None:
    held = guarded._lock.held_by_current_thread()
    thread = threading.current_thread().name
    for checker in _CHECKERS:
        checker.note(guarded._name, guarded._lock.name, mode, thread, held)


class RaceChecker:
    """Record guarded-field accesses; flag ones without the lock held."""

    def __init__(self):
        self._mu = threading.Lock()
        self.accesses = 0
        #: field -> {"lock", "readers": set, "writers": set}
        self.fields: Dict[str, Dict[str, object]] = {}
        #: deduplicated (field, thread, mode) violations
        self.violations: List[Dict[str, str]] = []
        self._seen: set = set()

    def note(self, field: str, lock: str, mode: str, thread: str,
             held: bool) -> None:
        with self._mu:
            self.accesses += 1
            info = self.fields.setdefault(
                field, {"lock": lock, "readers": set(), "writers": set()}
            )
            info["readers" if mode == "read" else "writers"].add(thread)
            if not held:
                key = (field, thread, mode)
                if key not in self._seen:
                    self._seen.add(key)
                    self.violations.append({
                        "field": field, "lock": lock,
                        "mode": mode, "thread": thread,
                    })

    @property
    def ok(self) -> bool:
        with self._mu:
            return not self.violations

    def report(self):
        from ..findings import Finding, Report

        report = Report(tool="race-check", checks_run=["guarded-race"])
        with self._mu:
            for v in self.violations:
                report.add(Finding(
                    rule="guarded-race",
                    message=(
                        f"guarded field {v['field']!r} {v['mode']} by thread "
                        f"{v['thread']} without declared lock {v['lock']!r} "
                        "held"
                    ),
                    context=dict(v),
                ))
            report.metrics.update({
                "guarded_accesses": self.accesses,
                "guarded_fields": len(self.fields),
                "race_violations": len(self.violations),
            })
        return report
