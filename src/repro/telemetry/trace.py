"""Span-based tracing: the timing substrate for every perf claim.

The paper's evaluation is a set of *measurements* -- seconds per phase
(Fig. 7c), kernel launches per update (Fig. 7b), bytes per collective
(Table 5).  Rather than sprinkling ``time.perf_counter()`` pairs through
every subsystem, the hot paths open named spans::

    with telemetry.span("fekf.forward"):
        ...                     # wall + CPU time, kernel counts
    with telemetry.span("fekf.update", kind="energy") as sp:
        sp.add("updates", 1)    # arbitrary counters on the span

Spans nest; each completed span becomes one :class:`SpanEvent` carrying
its wall/CPU duration, depth, parent linkage, attributes, and counters.
Events flow to whatever :class:`Tracer` is active.

Tracing is *opt-in*: when no tracer is installed, :func:`span` returns a
shared no-op context manager and the instrumented code pays only one
module-global check per span -- the <5% overhead budget of the CI smoke
check.  Install a tracer either scoped (``with Tracer() as tr: ...``) or
process-wide (:func:`enable` / :func:`disable`).

``Tracer(capture_kernels=True)`` additionally opens a
:class:`repro.autograd.KernelCounter` per span, so every event also
reports the primitive-op launches and output bytes of its extent --
Figure 7b falls out of the same event stream as Figure 7c.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..autograd.instrument import KernelCounter

__all__ = [
    "SpanEvent",
    "Span",
    "Tracer",
    "span",
    "current_tracer",
    "current_span_name",
    "enable",
    "disable",
]


@dataclass
class SpanEvent:
    """One completed span."""

    name: str
    #: monotonically increasing id, assigned when the span *opens* (so a
    #: parent always has a smaller id than its children)
    span_id: int
    #: id of the enclosing span, or ``None`` at top level
    parent_id: Optional[int]
    #: nesting depth under the tracer root (top level = 0)
    depth: int
    #: seconds since the tracer was installed, at span open
    t_start: float
    wall_s: float
    cpu_s: float
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready representation (the JSONL event schema)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "t_start": self.t_start,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": self.attrs,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpanEvent":
        """Inverse of :meth:`as_dict` (the JSONL round-trip)."""
        return cls(
            name=d["name"],
            span_id=int(d.get("span_id", 0)),
            parent_id=d.get("parent_id"),
            depth=int(d.get("depth", 0)),
            t_start=float(d.get("t_start", 0.0)),
            wall_s=float(d.get("wall_s", 0.0)),
            cpu_s=float(d.get("cpu_s", 0.0)),
            attrs=dict(d.get("attrs", {})),
            counters=dict(d.get("counters", {})),
        )


class Span:
    """An open span; context manager handed out by :meth:`Tracer.span`."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "depth",
        "attrs", "counters", "_t0", "_c0", "_kc",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: dict = {}
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._t0 = 0.0
        self._c0 = 0.0
        self._kc: Optional[KernelCounter] = None

    # -- counter / attribute helpers -----------------------------------
    def add(self, key: str, value: float = 1.0) -> "Span":
        """Accumulate an arbitrary counter on this span."""
        self.counters[key] = self.counters.get(key, 0) + value
        return self

    def set(self, key: str, value) -> "Span":
        """Attach/overwrite an attribute on this span."""
        self.attrs[key] = value
        return self

    # -- context protocol ----------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._open(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        if self.tracer.capture_kernels:
            self._kc = KernelCounter()
            self._kc.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        if self._kc is not None:
            self._kc.__exit__()
            self.counters["kernels"] = (
                self.counters.get("kernels", 0) + self._kc.total_launches
            )
            self.counters["kernel_bytes"] = (
                self.counters.get("kernel_bytes", 0) + self._kc.total_bytes
            )
        self.tracer._close(self, wall, cpu)


class _NullSpan:
    """Shared no-op stand-in used when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def add(self, key: str, value: float = 1.0) -> "_NullSpan":
        return self

    def set(self, key: str, value) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span events and fans them out to sinks.

    Parameters
    ----------
    sinks:
        Callables invoked with each completed :class:`SpanEvent` (e.g. a
        :class:`repro.telemetry.JsonlExporter`).
    capture_kernels:
        Open a :class:`KernelCounter` per span so events carry
        ``counters["kernels"]`` / ``counters["kernel_bytes"]``.  A parent
        span's counts include its children's (counters nest).
    keep_events:
        Retain completed events on :attr:`events` (default).  Disable for
        unbounded runs that only stream to sinks.
    profile:
        Attach a :class:`repro.telemetry.profile.Profiler`: while this
        tracer is installed, every primitive-op launch on the installing
        thread becomes a timed, span-attributed
        :class:`~repro.telemetry.profile.OpEvent` on
        ``tracer.profiler.events`` (the Chrome-trace op timeline).
    """

    def __init__(
        self,
        sinks: tuple[Callable[[SpanEvent], None], ...] | list = (),
        capture_kernels: bool = False,
        keep_events: bool = True,
        profile: bool = False,
    ):
        self.sinks = list(sinks)
        self.capture_kernels = bool(capture_kernels)
        self.keep_events = bool(keep_events)
        self.events: list[SpanEvent] = []
        self._open_stack: list[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()
        if profile:
            from .profile import Profiler  # lazy: profile imports this module

            self.profiler: Optional["Profiler"] = Profiler(self)
        else:
            self.profiler = None

    # -- span lifecycle (called by Span) -------------------------------
    def _open(self, sp: Span) -> None:
        sp.span_id = self._next_id
        self._next_id += 1
        if self._open_stack:
            parent = self._open_stack[-1]
            sp.parent_id = parent.span_id
            sp.depth = parent.depth + 1
        self._open_stack.append(sp)
        if self.profiler is not None:
            self.profiler.mark()

    def _close(self, sp: Span, wall: float, cpu: float) -> None:
        if self._open_stack and self._open_stack[-1] is sp:
            self._open_stack.pop()
        else:  # out-of-order exit; drop without corrupting the stack
            self._open_stack = [s for s in self._open_stack if s is not sp]
        if self.profiler is not None:
            self.profiler.mark()
        event = SpanEvent(
            name=sp.name,
            span_id=sp.span_id,
            parent_id=sp.parent_id,
            depth=sp.depth,
            t_start=sp._t0 - self._epoch,
            wall_s=wall,
            cpu_s=cpu,
            attrs=sp.attrs,
            counters=sp.counters,
        )
        if self.keep_events:
            self.events.append(event)
        for sink in self.sinks:
            sink(event)

    # -- public API ----------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def emit_foreign(self, events: list[dict], **extra_attrs) -> None:
        """Merge span events captured elsewhere (a worker thread or a
        worker process, serialized via ``SpanEvent.as_dict``) into this
        tracer's stream.

        Span ids are remapped into this tracer's id space; foreign
        top-level spans attach to the currently open span (if any), so a
        rank's ``fekf.forward`` lands under the parent's
        ``parallel.compute`` exactly as the serial path would nest it.
        ``t_start`` stays relative to the *worker's* tracer epoch --
        consumers that need a global timeline should order by span id.
        """
        if not events:
            return
        parent = self._open_stack[-1] if self._open_stack else None
        base_parent_id = parent.span_id if parent is not None else None
        base_depth = parent.depth + 1 if parent is not None else 0
        idmap: dict[int, int] = {}
        for d in events:
            idmap[d["span_id"]] = self._next_id
            self._next_id += 1
        # foreign events arrive in close order (children first); re-emit
        # in open order so parents keep smaller ids than their children
        for d in sorted(events, key=lambda d: d["span_id"]):
            ev = SpanEvent(
                name=d["name"],
                span_id=idmap[d["span_id"]],
                parent_id=idmap.get(d.get("parent_id"), base_parent_id),
                depth=base_depth + d.get("depth", 0),
                t_start=d.get("t_start", 0.0),
                wall_s=d["wall_s"],
                cpu_s=d.get("cpu_s", 0.0),
                attrs={**d.get("attrs", {}), **extra_attrs},
                counters=dict(d.get("counters", {})),
            )
            if self.keep_events:
                self.events.append(ev)
            for sink in self.sinks:
                sink(ev)

    def adopt(self, child: "Tracer", **extra_attrs) -> None:
        """Fold a finished child tracer's spans (and profiler ops, when
        both sides profile) into this tracer's stream.

        This is the merge half of the capture-per-thread pattern: a
        worker thread records under its own tracer (tracer stacks are
        thread-local), and once it has been joined the owner adopts the
        events -- the serve batcher and every ``repro.online`` stage
        thread ship their spans home this way.  ``extra_attrs`` (e.g.
        ``thread="online-gate"``) are stamped on every adopted span.
        """
        if child is self:
            return
        if child.events:
            self.emit_foreign([e.as_dict() for e in child.events], **extra_attrs)
        if child.profiler is not None and self.profiler is not None:
            self.profiler.emit_foreign(
                [o.as_dict() for o in child.profiler.events], rank=-1
            )

    def summary(self) -> dict:
        """Aggregate retained events by span name (see ``export.summarize``)."""
        from .export import summarize

        return summarize(self.events)

    def chrome_trace(self) -> dict:
        """Render retained spans (+ profiler op timeline, if any) as a
        Chrome trace-event object (see ``profile.to_chrome_trace``)."""
        from .profile import to_chrome_trace

        ops = self.profiler.events if self.profiler is not None else ()
        return to_chrome_trace(self.events, ops)

    def __enter__(self) -> "Tracer":
        _stack().append(self)
        if self.profiler is not None:
            self.profiler.install()
        return self

    def __exit__(self, *exc) -> None:
        stack = _stack()
        if self in stack:
            stack.remove(self)
        if self.profiler is not None:
            self.profiler.uninstall()


class _TracerStack(threading.local):
    """Per-thread stack of installed tracers.

    Thread-locality is what lets rank workers (ThreadExecutor) capture
    spans under their *own* tracer while the parent thread's tracer keeps
    its open-span stack intact -- a shared stack would interleave
    open/close events from concurrent threads and corrupt parent linkage.
    A tracer installed on the main thread therefore does NOT see spans
    opened on other threads; workers return their events for merge via
    :meth:`Tracer.emit_foreign` instead.
    """

    def __init__(self):
        self.tracers: list[Tracer] = []


_LOCAL = _TracerStack()


def _stack() -> list[Tracer]:
    return _LOCAL.tracers


def current_tracer() -> Optional[Tracer]:
    """The innermost tracer active on the calling thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def current_span_name() -> str:
    """Name of the innermost *open* span on the calling thread's active
    tracer, or ``""`` when no tracer/span is live.  Used by diagnostics
    (e.g. the analysis sanitizer) to attribute a finding to the training
    phase it occurred in."""
    tracer = current_tracer()
    if tracer is None or not tracer._open_stack:
        return ""
    return tracer._open_stack[-1].name


def span(name: str, **attrs):
    """Open a span on the active tracer (no-op when tracing is off)."""
    stack = _stack()
    if not stack:
        return NULL_SPAN
    return stack[-1].span(name, **attrs)


def enable(
    *sinks,
    capture_kernels: bool = False,
    keep_events: bool = True,
    profile: bool = False,
) -> Tracer:
    """Install a thread-wide tracer (idempotent layering is allowed:
    nested ``enable`` calls stack, ``disable`` pops the innermost).
    ``profile=True`` attaches the op-level profiler (see
    :mod:`repro.telemetry.profile`)."""
    tracer = Tracer(
        sinks,
        capture_kernels=capture_kernels,
        keep_events=keep_events,
        profile=profile,
    )
    _stack().append(tracer)
    if tracer.profiler is not None:
        tracer.profiler.install()
    return tracer


def disable() -> Optional[Tracer]:
    """Remove the innermost installed tracer and return it."""
    stack = _stack()
    tracer = stack.pop() if stack else None
    if tracer is not None and tracer.profiler is not None:
        tracer.profiler.uninstall()
    return tracer
