"""Runtime health plane: sliding-window SLOs, watchdogs, live monitor.

Everything the earlier telemetry layers record is retrospective -- spans
and counters summarized after a run ends.  This package watches a run
*while it executes*:

* :mod:`.window` -- :class:`SlidingHistogram` / :class:`WindowedRate`,
  time-bucketed aggregation giving p50/p99/error-rate over the last N
  seconds (worker histograms fold in via :meth:`Histogram.merge`);
* :mod:`.watchdog` -- :class:`HeartbeatRegistry`, stage heartbeats with
  dead-thread and deadline-overrun detection for the serve batcher and
  the online pipeline stages;
* :mod:`.slo` -- declarative :class:`SLORule`\\ s (p99 latency, error
  rate, queue saturation, RMSE non-regression, swap staleness,
  heartbeats) evaluated purely into ok/warn/breach
  :class:`SLOStatus`\\ es;
* :mod:`.health` -- the :class:`HealthMonitor` background sampler that
  polls health sources, applies the rules, and streams snapshots plus
  transition alerts over the JSONL exporter;
* :mod:`.dashboard` -- pure renderers behind the
  ``python -m repro.telemetry.monitor`` live terminal view.

Typical wiring (the harness's ``--health-out`` flag does exactly this)::

    from repro.telemetry import JsonlExporter
    from repro.telemetry.monitor import HealthMonitor

    with JsonlExporter("health.jsonl") as out:
        mon = HealthMonitor(interval_s=0.25, exporter=out)
        mon.watch_service(service)
        mon.watch_learner(learner)
        with mon:
            ...  # run; snapshots and alerts stream to health.jsonl
        print(mon.summary()["breach_alerts"])
"""

from .dashboard import STATE_GLYPHS, render, render_timeline
from .health import HealthMonitor, HealthSnapshot
from .slo import (
    KINDS,
    SLORule,
    SLOStatus,
    default_online_rules,
    default_serve_rules,
    evaluate_rule,
    evaluate_rules,
    worst_state,
)
from .watchdog import HeartbeatRegistry
from .window import SlidingHistogram, WindowedRate

__all__ = [
    "SlidingHistogram",
    "WindowedRate",
    "HeartbeatRegistry",
    "KINDS",
    "SLORule",
    "SLOStatus",
    "evaluate_rule",
    "evaluate_rules",
    "worst_state",
    "default_serve_rules",
    "default_online_rules",
    "HealthMonitor",
    "HealthSnapshot",
    "render",
    "render_timeline",
    "STATE_GLYPHS",
]
