"""Pipeline watchdogs: stage heartbeats and dead-thread detection.

The concurrent systems this repo grew (the serve batcher, the four
``repro.online`` stage threads) fail *silently* when they fail: a wedged
worker leaves the batcher blocked in dispatch, a crashed stage thread
leaves its queue full and its consumers starved, and nothing downstream
raises until a request timeout -- if ever.  The watchdog turns those
hangs into observable state:

* each long-running loop registers a named :class:`HeartbeatRegistry`
  entry (optionally bound to its thread object) and calls ``beat`` every
  iteration -- including idle-wait iterations, so "waiting for work" is
  healthy and "stuck in one piece of work" is not;
* :meth:`HeartbeatRegistry.ages` reports, per heartbeat, the seconds
  since the last beat, whether the bound thread is still alive, and
  whether the entry is *stalled* (beat older than its deadline, or the
  thread died before :meth:`done` was called);
* the ``heartbeat_s`` SLO rule (:mod:`.slo`) turns any stalled entry
  into a breach, which is how the fault-injection tests assert that a
  wedged :class:`~repro.serve.BoundedWorkQueue` consumer or a stalled
  ``InferenceService`` worker surfaces within the configured deadline.

``done(name)`` marks a clean exit: a joined thread that finished its
stream is not a corpse, so monitors polling after a run completes see
``ok`` rather than a false dead-thread breach.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ...analysis.concurrency import TrackedLock

__all__ = ["HeartbeatRegistry"]


class HeartbeatRegistry:
    """Named liveness beacons for pipeline stages (thread-safe)."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = TrackedLock("watchdog.heartbeats")
        self._entries: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        deadline_s: Optional[float] = None,
        thread: Optional[threading.Thread] = None,
        now: Optional[float] = None,
    ) -> None:
        """(Re-)register a heartbeat; the first beat is implicit.

        ``deadline_s`` overrides the SLO rule's threshold for this entry
        (a slow stage -- MD exploration, a training round -- can carry a
        larger budget than its peers).  ``thread`` enables dead-thread
        detection.  Re-registering resets staleness and the done flag
        (a paused/resumed pipeline starts a fresh watch).
        """
        now = self._clock() if now is None else now
        with self._lock:
            self._entries[name] = {
                "last": now,
                "beats": 0,
                "deadline_s": deadline_s,
                "thread": thread,
                "done": False,
            }

    def beat(self, name: str, now: Optional[float] = None) -> None:
        """Refresh ``name``'s liveness stamp (auto-registers unknowns)."""
        now = self._clock() if now is None else now
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = self._entries[name] = {
                    "last": now, "beats": 0, "deadline_s": None,
                    "thread": None, "done": False,
                }
            entry["last"] = now
            entry["beats"] += 1

    def done(self, name: str, now: Optional[float] = None) -> None:
        """Mark a clean exit: the stage finished its stream, so a stale
        beat / joined thread is expected, not a stall."""
        now = self._clock() if now is None else now
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                entry["last"] = now
                entry["done"] = True

    # ------------------------------------------------------------------
    def ages(self, now: Optional[float] = None) -> dict:
        """Per-heartbeat liveness: ``{name: {age_s, beats, deadline_s,
        alive, done, stalled}}`` -- the ``heartbeat_s`` SLO rule's input
        and a :class:`~repro.telemetry.monitor.HealthMonitor` source."""
        now = self._clock() if now is None else now
        out: dict[str, dict] = {}
        with self._lock:
            for name, e in self._entries.items():
                thread = e["thread"]
                alive = thread.is_alive() if thread is not None else True
                age = now - e["last"]
                stalled = not e["done"] and not alive
                if not e["done"] and e["deadline_s"] is not None:
                    stalled = stalled or age > e["deadline_s"]
                out[name] = {
                    "age_s": age,
                    "beats": e["beats"],
                    "deadline_s": e["deadline_s"],
                    "alive": alive,
                    "done": e["done"],
                    "stalled": stalled,
                }
        return out

    # the HealthSource surface (a registry can be polled directly)
    def health(self) -> dict:
        return {"heartbeats": self.ages()}

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries
