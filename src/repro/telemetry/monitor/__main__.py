"""Live terminal dashboard over a health JSONL stream.

Usage::

    python -m repro.telemetry.monitor run.jsonl            # latest snapshot
    python -m repro.telemetry.monitor run.jsonl --follow   # live refresh
    python -m repro.telemetry.monitor --demo               # synthetic tour

Reads the ``{"type": "health"}`` / ``{"type": "alert"}`` lines a
:class:`~repro.telemetry.monitor.HealthMonitor` appends through its
exporter, renders the newest snapshot as a status panel plus the alert
timeline, and (with ``--follow``) re-reads the file every refresh so it
tails a live run.  ``--demo`` renders a deterministic synthetic
ok -> warn -> breach -> recovery sequence with no run attached (a
smoke-testable tour of every dashboard state).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import HealthMonitor, SLORule, render, render_timeline
from ..export import read_jsonl

_CLEAR = "\x1b[2J\x1b[H"


def _split_events(events: list) -> tuple[list, list]:
    snaps = [e for e in events if e.get("type") == "health"]
    alerts = [e for e in events if e.get("type") == "alert"]
    return snaps, alerts


def _render_file(path: str, color: bool, width: int) -> str:
    try:
        events = read_jsonl(path)
    except FileNotFoundError:
        return f"(waiting for {path})"
    snaps, alerts = _split_events(events)
    if not snaps:
        return f"({path}: no health snapshots yet)"
    out = [render(snaps[-1], width=width, color=color)]
    out.append(f" snapshots: {len(snaps)}   alerts: {len(alerts)}")
    out.append(render_timeline(alerts, color=color))
    return "\n".join(out)


def _demo_snapshots() -> tuple[list, list]:
    """Deterministic ok -> warn -> breach -> recovery sequence."""
    # p99 profile over 12 ticks: healthy, degrading past warn (0.8*0.5)
    # and breach (0.5), then recovering
    p99s = [0.10, 0.12, 0.15, 0.30, 0.42, 0.55, 0.70, 0.62, 0.45, 0.30, 0.15, 0.10]
    ticks = []
    clock = iter(float(i) for i in range(len(p99s) + 1))
    mon = HealthMonitor(interval_s=1.0, clock=lambda: next(clock))
    state = {"p99": p99s[0]}
    mon.add_source("serve", lambda: {
        "latency": {"count": 200, "p50": state["p99"] / 3.0, "p99": state["p99"]},
        "traffic": {"events": 200.0, "errors": 1.0, "rate_per_s": 40.0,
                    "error_rate": 0.005, "ewma_per_s": 41.0, "window_s": 30.0},
        "queue_depth": int(200 * state["p99"]), "queue_capacity": 256,
        "heartbeats": {"serve-batcher": {
            "age_s": 0.01, "beats": 1000, "deadline_s": None,
            "alive": True, "done": False, "stalled": False}},
    })
    mon.add_rules(
        SLORule("demo p99 latency", "p99_latency_s", 0.5),
        SLORule("demo error rate", "error_rate", 0.05),
        SLORule("demo queue saturation", "queue_saturation", 0.95),
        SLORule("demo batcher heartbeat", "heartbeat_s", 5.0),
    )
    for p99 in p99s:
        state["p99"] = p99
        ticks.append(mon.poll_once().as_dict())
    return ticks, list(mon.alerts)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.telemetry.monitor",
        description="render health snapshots / SLO alerts from a JSONL stream",
    )
    ap.add_argument("path", nargs="?", help="health JSONL file to render")
    ap.add_argument("--follow", action="store_true",
                    help="refresh continuously until interrupted")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="refresh period with --follow (seconds)")
    ap.add_argument("--no-color", action="store_true", help="plain ASCII output")
    ap.add_argument("--width", type=int, default=78)
    ap.add_argument("--demo", action="store_true",
                    help="render a synthetic ok->warn->breach->recovery run")
    args = ap.parse_args(argv)
    color = not args.no_color

    if args.demo:
        snaps, alerts = _demo_snapshots()
        for snap in snaps:
            print(render(snap, width=args.width, color=color))
        print("\n alert timeline:")
        print(render_timeline(alerts, color=color))
        return 0

    if not args.path:
        ap.error("a health JSONL path is required (or --demo)")

    if not args.follow:
        print(_render_file(args.path, color, args.width))
        return 0

    try:
        while True:
            frame = _render_file(args.path, color, args.width)
            sys.stdout.write(_CLEAR + frame + "\n")
            sys.stdout.flush()
            # tailing a file written by another process: no shared
            # Condition exists to wait on, so a fixed cadence is correct
            time.sleep(args.interval)  # lint: disable=sleep-poll
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
