"""Sliding-window aggregation over the streaming instruments.

The base :class:`~repro.telemetry.metrics.Histogram` accumulates over a
whole run -- exactly right for a post-hoc manifest, useless for "is p99
breaching *right now*".  The two instruments here answer the live
question by bucketing time into a ring:

:class:`SlidingHistogram`
    A ring of ``buckets`` plain histograms, each covering
    ``window_s / buckets`` seconds.  ``observe`` lands in the current
    bucket; ``window()`` merges every still-live bucket into one
    :class:`Histogram` (via :meth:`Histogram.merge`), so p50/p99 over
    the last ``window_s`` seconds cost one small merge and nothing is
    ever rescanned.  Worker telemetry folds in the same way:
    :meth:`merge` accepts a serialized histogram shipped home by a rank
    worker and lands it in the current bucket.

:class:`WindowedRate`
    Bucketed event/error counts over the same ring, plus an
    exponentially-decayed rate estimate (EWMA).  ``rate()`` is events/s
    over the window, ``error_rate()`` the windowed error fraction --
    the two numbers the error-rate SLO evaluates.

Both take an injectable monotonic ``clock`` (tests drive a fake one; the
default is ``time.monotonic`` -- never wall-clock, see the project lint).
All methods are thread-safe: producers observe from request threads
while the health monitor reads from its sampler thread.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Optional

from ...analysis.concurrency import TrackedLock
from ..metrics import Histogram

__all__ = ["SlidingHistogram", "WindowedRate"]


class SlidingHistogram:
    """Time-bucketed ring of :class:`Histogram`\\ s over the last
    ``window_s`` seconds.

    Parameters
    ----------
    window_s:
        Extent of the sliding window.
    buckets:
        Ring resolution; expired observations age out one bucket
        (``window_s / buckets`` seconds) at a time.
    max_samples:
        Percentile reservoir cap *per bucket*.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        window_s: float = 30.0,
        buckets: int = 10,
        max_samples: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0.0:
            raise ValueError("window_s must be > 0")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.window_s = float(window_s)
        self.buckets = int(buckets)
        self.max_samples = int(max_samples)
        self._bucket_s = self.window_s / self.buckets
        self._clock = clock
        self._lock = TrackedLock("monitor.sliding_histogram")
        #: ring slots: [epoch occupying the slot, Histogram]
        self._ring: list[list] = [
            [-1, Histogram(self.max_samples)] for _ in range(self.buckets)
        ]

    # ------------------------------------------------------------------
    def _bucket(self, now: float) -> Histogram:
        """Current-epoch bucket, recycling the slot it wraps onto."""
        epoch = int(now / self._bucket_s)
        slot = self._ring[epoch % self.buckets]
        if slot[0] != epoch:
            slot[0] = epoch
            slot[1] = Histogram(self.max_samples)
        return slot[1]

    def observe(self, value: float, now: Optional[float] = None) -> None:
        now = self._clock() if now is None else now
        with self._lock:
            self._bucket(now).observe(value)

    def merge(self, hist: "Histogram | dict", now: Optional[float] = None) -> None:
        """Fold a histogram (or its ``as_dict`` form, e.g. one rank
        worker's latency observations) into the current bucket."""
        now = self._clock() if now is None else now
        with self._lock:
            self._bucket(now).merge(hist)

    # ------------------------------------------------------------------
    def window(self, now: Optional[float] = None) -> Histogram:
        """Merged :class:`Histogram` over every still-live bucket."""
        now = self._clock() if now is None else now
        epoch = int(now / self._bucket_s)
        lo = epoch - self.buckets + 1
        merged = Histogram(self.max_samples * self.buckets)
        with self._lock:
            for stamp, hist in self._ring:
                if lo <= stamp <= epoch:
                    merged.merge(hist)
        return merged

    def summary(self, now: Optional[float] = None) -> dict:
        """``Histogram.summary()`` of the live window plus ``window_s``."""
        out = self.window(now).summary()
        out["window_s"] = self.window_s
        return out


class WindowedRate:
    """Event/error throughput over a sliding window, plus an EWMA rate.

    ``mark(n, errors=e)`` records ``n`` outcomes of which ``e`` failed.
    ``rate()`` is events/s over the live window (bucketed, exact);
    ``ewma_rate()`` is an exponentially-decayed estimate with half-life
    ``halflife_s`` that reacts faster to bursts; ``error_rate()`` is the
    windowed failure fraction in [0, 1].
    """

    def __init__(
        self,
        window_s: float = 30.0,
        buckets: int = 10,
        halflife_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0.0:
            raise ValueError("window_s must be > 0")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.window_s = float(window_s)
        self.buckets = int(buckets)
        self.halflife_s = float(halflife_s or self.window_s / 4.0)
        self._tau = self.halflife_s / math.log(2.0)
        self._bucket_s = self.window_s / self.buckets
        self._clock = clock
        self._lock = TrackedLock("monitor.windowed_rate")
        #: ring slots: [epoch, events, errors]
        self._ring: list[list] = [[-1, 0.0, 0.0] for _ in range(self.buckets)]
        #: exponentially-decayed event mass and its last-update stamp
        self._decayed = 0.0
        self._decayed_t: Optional[float] = None
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    def mark(
        self, n: float = 1.0, errors: float = 0.0, now: Optional[float] = None
    ) -> None:
        now = self._clock() if now is None else now
        with self._lock:
            if self._t0 is None:
                self._t0 = now
            epoch = int(now / self._bucket_s)
            slot = self._ring[epoch % self.buckets]
            if slot[0] != epoch:
                slot[0] = epoch
                slot[1] = 0.0
                slot[2] = 0.0
            slot[1] += float(n)
            slot[2] += float(errors)
            if self._decayed_t is not None:
                self._decayed *= math.exp(-(now - self._decayed_t) / self._tau)
            self._decayed += float(n)
            self._decayed_t = now

    def _window_counts(self, now: float) -> tuple[float, float]:
        epoch = int(now / self._bucket_s)
        lo = epoch - self.buckets + 1
        events = errors = 0.0
        for stamp, ev, er in self._ring:
            if lo <= stamp <= epoch:
                events += ev
                errors += er
        return events, errors

    # ------------------------------------------------------------------
    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the live window."""
        now = self._clock() if now is None else now
        with self._lock:
            if self._t0 is None:
                return 0.0
            events, _ = self._window_counts(now)
            covered = min(self.window_s, max(now - self._t0, self._bucket_s))
        return events / covered

    def ewma_rate(self, now: Optional[float] = None) -> float:
        """Exponentially-decayed events/s (half-life ``halflife_s``)."""
        now = self._clock() if now is None else now
        with self._lock:
            if self._decayed_t is None:
                return 0.0
            mass = self._decayed * math.exp(-(now - self._decayed_t) / self._tau)
        return mass / self._tau

    def error_rate(self, now: Optional[float] = None) -> float:
        """Windowed failure fraction (0.0 when the window saw no events)."""
        now = self._clock() if now is None else now
        with self._lock:
            events, errors = self._window_counts(now)
        return errors / events if events > 0 else 0.0

    def summary(self, now: Optional[float] = None) -> dict:
        now = self._clock() if now is None else now
        with self._lock:
            events, errors = self._window_counts(now)
        return {
            "events": events,
            "errors": errors,
            "rate_per_s": self.rate(now),
            "ewma_per_s": self.ewma_rate(now),
            "error_rate": errors / events if events > 0 else 0.0,
            "window_s": self.window_s,
        }
