"""Declarative SLO rules evaluated against health-source samples.

A rule names a *kind* (what to read out of a source's health dict), a
threshold, and the source it applies to.  Evaluation is pure -- rule +
sample in, :class:`SLOStatus` out -- so the same rules run live in the
:class:`~repro.telemetry.monitor.HealthMonitor`, replayed over a health
JSONL file, and asserted in tests with synthetic samples.

Kinds
-----
``p99_latency_s``
    ``data["latency"]["p99"]`` (a windowed histogram summary) against
    the threshold; ``min_count`` observations gate evaluation so a cold
    window is ``no_data`` rather than a false positive.
``error_rate``
    ``data["traffic"]["error_rate"]`` (windowed failure fraction).
``queue_saturation``
    Worst ``depth/capacity`` over ``data["queues"]`` (or the flat
    ``queue_depth``/``queue_capacity`` pair a service reports).
``rmse_nonregression``
    ``served_rmse - best_rmse``: the online promotion gate guarantees
    the served error only improves, so any positive regression beyond
    the threshold is a breach (a swap that made things worse).
``swap_staleness_s``
    ``data["swap_age_s"]``: seconds since the last live promotion (or
    loop start) -- a stuck trainer stops swapping long before it stops
    answering.
``heartbeat_s``
    Worst stage-heartbeat age over ``data["heartbeats"]`` (see
    :mod:`.watchdog`); a dead thread or a per-entry deadline overrun is
    an immediate breach regardless of the rule threshold.

States: ``ok`` < ``warn`` (value past ``warn_ratio * threshold``) <
``breach`` (past the threshold); ``no_data`` when the source sample
cannot answer yet (never alerts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "KINDS",
    "SLORule",
    "SLOStatus",
    "evaluate_rule",
    "evaluate_rules",
    "worst_state",
    "default_serve_rules",
    "default_online_rules",
]

KINDS = (
    "p99_latency_s",
    "error_rate",
    "queue_saturation",
    "rmse_nonregression",
    "swap_staleness_s",
    "heartbeat_s",
)

#: severity order used for "worst state" folds
_SEVERITY = {"no_data": 0, "ok": 0, "warn": 1, "breach": 2}


def worst_state(states) -> str:
    """The most severe of an iterable of states (``ok`` when empty)."""
    worst = "ok"
    for s in states:
        if _SEVERITY.get(s, 0) > _SEVERITY[worst]:
            worst = s
    return worst


@dataclass(frozen=True)
class SLORule:
    """One service-level objective over one health source."""

    #: display name, unique within a monitor (alert transitions key on it)
    name: str
    #: one of :data:`KINDS`
    kind: str
    #: breach boundary (seconds, fraction, or delta -- per kind)
    threshold: float
    #: health-source name this rule reads (see ``HealthMonitor.add_source``)
    source: str = "serve"
    #: warn once the value passes ``warn_ratio * threshold``
    warn_ratio: float = 0.8
    #: observations required before latency/error kinds evaluate
    min_count: int = 1

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; one of {KINDS}")
        if self.threshold < 0.0:
            raise ValueError("threshold must be >= 0")
        if not 0.0 <= self.warn_ratio <= 1.0:
            raise ValueError("warn_ratio must be in [0, 1]")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "source": self.source,
            "warn_ratio": self.warn_ratio,
            "min_count": self.min_count,
        }


@dataclass
class SLOStatus:
    """One rule's verdict on one snapshot."""

    rule: str
    kind: str
    source: str
    #: ``ok`` / ``warn`` / ``breach`` / ``no_data``
    state: str
    value: Optional[float]
    threshold: float
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "source": self.source,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SLOStatus":
        return cls(
            rule=d["rule"], kind=d["kind"], source=d.get("source", ""),
            state=d["state"], value=d.get("value"),
            threshold=float(d.get("threshold", 0.0)),
            detail=d.get("detail", ""),
        )


def _grade(rule: SLORule, value: float, detail: str = "") -> SLOStatus:
    """Upper-bound grading shared by every kind."""
    if value > rule.threshold:
        state = "breach"
    elif value > rule.warn_ratio * rule.threshold:
        state = "warn"
    else:
        state = "ok"
    return SLOStatus(
        rule=rule.name, kind=rule.kind, source=rule.source,
        state=state, value=value, threshold=rule.threshold, detail=detail,
    )


def _no_data(rule: SLORule, detail: str) -> SLOStatus:
    return SLOStatus(
        rule=rule.name, kind=rule.kind, source=rule.source,
        state="no_data", value=None, threshold=rule.threshold, detail=detail,
    )


def evaluate_rule(rule: SLORule, data: Optional[dict]) -> SLOStatus:
    """Evaluate one rule against one source sample (pure)."""
    if not data:
        return _no_data(rule, "source missing from snapshot")

    if rule.kind == "p99_latency_s":
        lat = data.get("latency") or {}
        if lat.get("count", 0) < rule.min_count:
            return _no_data(rule, f"window holds {lat.get('count', 0)} obs")
        return _grade(rule, float(lat.get("p99", 0.0)))

    if rule.kind == "error_rate":
        traffic = data.get("traffic") or data
        events = traffic.get("events", traffic.get("count", 0))
        if events < rule.min_count:
            return _no_data(rule, f"window holds {events} events")
        return _grade(rule, float(traffic.get("error_rate", 0.0)))

    if rule.kind == "queue_saturation":
        queues = data.get("queues")
        if queues:
            worst_name, value = "", -1.0
            for qname, q in queues.items():
                cap = float(q.get("capacity", 0)) or 1.0
                sat = float(q.get("depth", 0)) / cap
                if sat > value:
                    worst_name, value = qname, sat
            return _grade(rule, value, detail=worst_name)
        if "queue_capacity" in data:
            cap = float(data["queue_capacity"]) or 1.0
            return _grade(rule, float(data.get("queue_depth", 0)) / cap)
        return _no_data(rule, "no queue stats in sample")

    if rule.kind == "rmse_nonregression":
        served = data.get("served_rmse")
        best = data.get("best_rmse")
        if served is None or best is None:
            return _no_data(rule, "no RMSE in sample")
        served, best = float(served), float(best)
        if not (served == served and best == best) or best == float("inf"):
            return _no_data(rule, "RMSE not measured yet")  # NaN/inf guard
        return _grade(rule, served - best, detail=f"served={served:.4g}")

    if rule.kind == "swap_staleness_s":
        age = data.get("swap_age_s")
        if age is None:
            return _no_data(rule, "no swap clock in sample")
        return _grade(rule, float(age), detail=f"swaps={data.get('swaps', 0)}")

    # heartbeat_s: worst age over the registry; dead thread or per-entry
    # deadline overrun breaches immediately
    beats = data.get("heartbeats")
    if beats is None:
        beats = data if all(isinstance(v, dict) for v in data.values()) else None
    if not beats:
        return _no_data(rule, "no heartbeats in sample")
    worst_value, worst_name, breach_detail = -1.0, "", ""
    for name, info in beats.items():
        if info.get("done"):
            continue
        age = float(info.get("age_s", 0.0))
        if not info.get("alive", True):
            breach_detail = f"{name}: thread died"
            worst_value, worst_name = max(worst_value, age), name
            continue
        deadline = info.get("deadline_s")
        if deadline is not None and age > float(deadline):
            breach_detail = breach_detail or f"{name}: {age:.2f}s > {deadline}s deadline"
        if age > worst_value:
            worst_value, worst_name = age, name
    if worst_value < 0.0:
        return _no_data(rule, "all heartbeats done")
    if breach_detail:
        return SLOStatus(
            rule=rule.name, kind=rule.kind, source=rule.source,
            state="breach", value=worst_value, threshold=rule.threshold,
            detail=breach_detail,
        )
    return _grade(rule, worst_value, detail=worst_name)


def evaluate_rules(rules, sources: dict) -> list:
    """Evaluate every rule against ``{source_name: sample}``."""
    return [evaluate_rule(rule, sources.get(rule.source)) for rule in rules]


# ---------------------------------------------------------------------------
# stock rule sets (conservative: zero false positives on a healthy run)
# ---------------------------------------------------------------------------
def default_serve_rules(
    source: str = "serve",
    p99_latency_s: float = 2.0,
    error_rate: float = 0.05,
    queue_saturation: float = 0.95,
    heartbeat_s: float = 5.0,
    min_count: int = 8,
) -> list:
    """SLOs for an :class:`~repro.serve.InferenceService`."""
    return [
        SLORule(f"{source} p99 latency", "p99_latency_s", p99_latency_s,
                source=source, min_count=min_count),
        SLORule(f"{source} error rate", "error_rate", error_rate,
                source=source, min_count=min_count),
        SLORule(f"{source} queue saturation", "queue_saturation",
                queue_saturation, source=source),
        SLORule(f"{source} batcher heartbeat", "heartbeat_s", heartbeat_s,
                source=source),
    ]


def default_online_rules(
    source: str = "online",
    heartbeat_s: float = 30.0,
    rmse_regression: float = 0.0,
    swap_staleness_s: float = 300.0,
) -> list:
    """SLOs for an :class:`~repro.online.OnlineLearner` pipeline."""
    return [
        SLORule(f"{source} stage heartbeats", "heartbeat_s", heartbeat_s,
                source=source),
        SLORule(f"{source} served RMSE non-regression", "rmse_nonregression",
                rmse_regression, source=source, warn_ratio=1.0),
        SLORule(f"{source} swap staleness", "swap_staleness_s",
                swap_staleness_s, source=source),
    ]
