"""Terminal rendering for health snapshots and alert timelines.

Pure functions from snapshot dicts to strings -- the CLI
(``python -m repro.telemetry.monitor``) handles files and refresh loops,
tests assert on the strings, and nothing here touches a clock.

Colors are plain ANSI (green ok / yellow warn / red breach / dim
no_data) and drop out entirely with ``color=False`` so CI logs and
pipes stay clean.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["render", "render_timeline", "STATE_GLYPHS"]

_RESET = "\x1b[0m"
_COLORS = {
    "ok": "\x1b[32m",        # green
    "warn": "\x1b[33m",      # yellow
    "breach": "\x1b[31;1m",  # bold red
    "no_data": "\x1b[2m",    # dim
}
STATE_GLYPHS = {"ok": "+", "warn": "!", "breach": "x", "no_data": "."}


def _paint(text: str, state: str, color: bool) -> str:
    if not color:
        return text
    return f"{_COLORS.get(state, '')}{text}{_RESET}"


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000 or (0 < abs(value) < 0.001):
        return f"{value:.3g}"
    return f"{value:.4f}".rstrip("0").rstrip(".") or "0"


def _snapshot_dict(snapshot) -> dict:
    return snapshot if isinstance(snapshot, dict) else snapshot.as_dict()


def render(snapshot, width: int = 78, color: bool = True) -> str:
    """One snapshot as a boxed status panel.

    Accepts a :class:`~.health.HealthSnapshot` or its ``as_dict`` form
    (what a health JSONL line deserializes to).
    """
    d = _snapshot_dict(snapshot)
    worst = d.get("worst", "ok")
    lines = []
    head = f" health @ t={d.get('t', 0.0):.1f}s  seq={d.get('seq', 0)} "
    badge = _paint(f"[{worst.upper()}]", worst, color)
    lines.append(f"={head}{'=' * max(1, width - len(head) - len(badge) - 9)} {badge}")

    # SLO verdicts
    for s in d.get("statuses", []):
        state = s.get("state", "no_data")
        glyph = _paint(STATE_GLYPHS.get(state, "?"), state, color)
        name = s.get("rule", "?")[:32].ljust(32)
        value = _fmt(s.get("value")).rjust(10)
        thresh = _fmt(s.get("threshold")).rjust(10)
        detail = s.get("detail", "")
        row = f" {glyph} {name} {value} / {thresh}  {detail}"
        lines.append(row[:width] if len(row) > width else row)

    # per-source vitals, one compact line each
    for name, sample in sorted(d.get("sources", {}).items()):
        if not isinstance(sample, dict):
            continue
        bits = []
        if "error" in sample:
            bits.append(_paint(f"error={sample['error']}", "breach", color))
        lat = sample.get("latency") or {}
        if lat.get("count"):
            bits.append(f"p50={_fmt(lat.get('p50'))}s p99={_fmt(lat.get('p99'))}s")
        traffic = sample.get("traffic") or {}
        if traffic.get("events"):
            bits.append(
                f"{_fmt(traffic.get('rate_per_s'))}/s"
                f" err={_fmt(traffic.get('error_rate'))}"
            )
        queues = sample.get("queues") or {}
        if queues:
            depths = " ".join(
                f"{q}:{int(v.get('depth', 0))}/{int(v.get('capacity', 0))}"
                for q, v in sorted(queues.items())
            )
            bits.append(depths)
        elif "queue_depth" in sample:
            bits.append(
                f"q:{int(sample['queue_depth'])}/{int(sample.get('queue_capacity', 0))}"
            )
        beats = sample.get("heartbeats") or {}
        if beats:
            stalled = [n for n, b in beats.items() if b.get("stalled")]
            live = sum(
                1 for b in beats.values() if not b.get("done") and b.get("alive")
            )
            hb = f"hb:{live}/{len(beats)}"
            if stalled:
                hb += _paint(f" stalled={','.join(sorted(stalled))}", "breach", color)
            bits.append(hb)
        if sample.get("swaps") is not None:
            bits.append(
                f"swaps={sample['swaps']}"
                + (f" age={_fmt(sample.get('swap_age_s'))}s"
                   if sample.get("swap_age_s") is not None else "")
            )
        if sample.get("served_rmse") is not None:
            bits.append(f"rmse={_fmt(sample['served_rmse'])}")
        if bits:
            row = f"   {name:<8} " + "  ".join(bits)
            lines.append(row)
    lines.append("=" * width)
    return "\n".join(lines)


def render_timeline(alerts, color: bool = True, limit: int = 50) -> str:
    """Alert events as a chronological timeline table (latest last)."""
    alerts = list(alerts)[-limit:]
    if not alerts:
        return " (no alerts)"
    lines = []
    for a in alerts:
        to = a.get("to", "ok")
        arrow = f"{a.get('from', '?')} -> {to}"
        stamp = f"t={a.get('t', 0.0):7.1f}s"
        row = (
            f" {stamp}  {_paint(arrow.ljust(16), to, color)} "
            f"{a.get('rule', '?'):<34} value={_fmt(a.get('value'))}"
        )
        detail = a.get("detail")
        if detail:
            row += f"  ({detail})"
        lines.append(row)
    return "\n".join(lines)
