"""Background health sampler: sources -> snapshots -> SLO alerts.

A :class:`HealthMonitor` polls pluggable *health sources* -- anything
with a ``health()`` method or any zero-arg callable returning a dict --
on a fixed interval from its own daemon thread, evaluates the registered
:class:`~.slo.SLORule`\\ s against the samples, and emits one
:class:`HealthSnapshot` per tick.  State *transitions* (ok -> warn,
warn -> breach, breach -> ok recovery) become structured alert events on
the attached :class:`~repro.telemetry.export.JsonlExporter`, so a quiet
healthy run writes snapshots but zero alerts.

Wiring is one call per subsystem::

    mon = HealthMonitor(interval_s=0.25, exporter=out)
    mon.watch_service(service)          # serve windows + batcher heartbeat
    mon.watch_learner(learner)          # stage heartbeats + RMSE + swap age
    mon.start()
    ...
    mon.stop()
    manifest_metrics = mon.summary()    # snapshots, alerts, by-rule counts

Sources that raise are recorded (``{"error": ...}`` in the snapshot, a
``monitor.source_errors`` counter) and never kill the sampler: a health
plane that dies with its patient is useless.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .slo import (
    SLORule,
    SLOStatus,
    default_online_rules,
    default_serve_rules,
    evaluate_rules,
    worst_state,
)
from ...analysis.concurrency import TrackedLock
from ..metrics import REGISTRY

__all__ = ["HealthSnapshot", "HealthMonitor"]

#: states that fire an alert on entry (and whose exit fires a recovery)
_ALERTING = ("warn", "breach")


@dataclass
class HealthSnapshot:
    """One sampler tick: every source's sample plus every rule's verdict."""

    seq: int
    #: seconds since the monitor started (monotonic delta, not wall time)
    t: float
    sources: dict = field(default_factory=dict)
    statuses: list = field(default_factory=list)
    alerts: list = field(default_factory=list)

    @property
    def worst(self) -> str:
        return worst_state(s.state for s in self.statuses)

    def as_dict(self) -> dict:
        return {
            "type": "health",
            "seq": self.seq,
            "t": self.t,
            "worst": self.worst,
            "sources": self.sources,
            "statuses": [s.as_dict() for s in self.statuses],
            "alerts": list(self.alerts),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "HealthSnapshot":
        return cls(
            seq=int(d.get("seq", 0)),
            t=float(d.get("t", 0.0)),
            sources=d.get("sources", {}),
            statuses=[SLOStatus.from_dict(s) for s in d.get("statuses", [])],
            alerts=list(d.get("alerts", [])),
        )


class HealthMonitor:
    """Periodic health sampler with declarative SLO evaluation.

    Parameters
    ----------
    interval_s:
        Sampler period.  Sub-second intervals are fine: a tick costs one
        ``health()`` call per source plus pure rule evaluation (the
        overhead benchmark holds the serving tax under 5%).
    history:
        Snapshots retained in memory for :meth:`summary` / dashboards.
    exporter:
        Optional :class:`~repro.telemetry.export.JsonlExporter`; every
        snapshot and alert is appended as a typed JSONL line.
    clock:
        Injectable monotonic time source for deterministic tests.
    """

    def __init__(
        self,
        interval_s: float = 0.25,
        history: int = 512,
        exporter=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval_s <= 0.0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = float(interval_s)
        self.history = int(history)
        self._exporter = exporter
        self._clock = clock
        self._t0 = clock()
        self._sources: dict[str, Callable[[], dict]] = {}
        self._rules: list[SLORule] = []
        self._states: dict[str, str] = {}  # rule name -> last alertable state
        self._lock = TrackedLock("monitor.health")
        self.snapshots: list[HealthSnapshot] = []
        self.alerts: list[dict] = []
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def add_source(self, name: str, source) -> None:
        """Register a health source: a zero-arg callable returning a dict,
        or an object exposing ``health()``."""
        fn = source if callable(source) else None
        if fn is None:
            health = getattr(source, "health", None)
            if not callable(health):
                raise TypeError(
                    f"source {name!r} is neither callable nor has .health()"
                )
            fn = health
        with self._lock:
            self._sources[name] = fn

    def add_rules(self, *rules: SLORule) -> None:
        with self._lock:
            self._rules.extend(rules)

    def watch_service(self, service, name: str = "serve", rules=None) -> None:
        """Attach an :class:`~repro.serve.InferenceService` under stock
        serve SLOs (pass ``rules=[]`` for sources-only, or your own)."""
        self.add_source(name, service)
        self.add_rules(*(default_serve_rules(name) if rules is None else rules))

    def watch_learner(self, learner, name: str = "online", rules=None) -> None:
        """Attach an :class:`~repro.online.OnlineLearner` under stock
        online-pipeline SLOs."""
        self.add_source(name, learner)
        self.add_rules(*(default_online_rules(name) if rules is None else rules))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def poll_once(self, now: Optional[float] = None) -> HealthSnapshot:
        """Sample every source, evaluate every rule, record one snapshot.

        Safe to call directly (tests, synchronous checkpoints) whether or
        not the background thread is running.
        """
        now = self._clock() if now is None else now
        with self._lock:
            sources = dict(self._sources)
            rules = list(self._rules)

        samples: dict[str, dict] = {}
        for name, fn in sources.items():
            try:
                samples[name] = fn()
            except Exception as exc:  # health plane must outlive its patient
                samples[name] = {"error": f"{type(exc).__name__}: {exc}"}
                REGISTRY.counter("monitor.source_errors", source=name).inc()

        statuses = evaluate_rules(rules, samples)
        with self._lock:
            seq = self._seq
            self._seq += 1
        snap = HealthSnapshot(
            seq=seq, t=now - self._t0, sources=samples, statuses=statuses
        )

        alerts = self._transitions(snap)
        snap.alerts = alerts

        with self._lock:
            self.snapshots.append(snap)
            if len(self.snapshots) > self.history:
                del self.snapshots[: -self.history]
            self.alerts.extend(alerts)

        if self._exporter is not None:
            self._exporter.write_event(snap.as_dict())
            for alert in alerts:
                self._exporter.write_event(alert)
        return snap

    def _transitions(self, snap: HealthSnapshot) -> list[dict]:
        """Alert on state changes only; ``no_data`` counts as quiet."""
        alerts = []
        for status in snap.statuses:
            state = status.state if status.state in _ALERTING else "ok"
            prev = self._states.get(status.rule, "ok")
            if state == prev:
                continue
            self._states[status.rule] = state
            alert = {
                "type": "alert",
                "t": snap.t,
                "seq": snap.seq,
                "rule": status.rule,
                "kind": status.kind,
                "source": status.source,
                "from": prev,
                "to": state,
                "value": status.value,
                "threshold": status.threshold,
                "detail": status.detail,
            }
            alerts.append(alert)
            REGISTRY.counter("monitor.alerts", to=state).inc()
        return alerts

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HealthMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="health-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.poll_once()
            except Exception:
                REGISTRY.counter("monitor.poll_errors").inc()

    def stop(self, final_poll: bool = True) -> None:
        """Stop the sampler thread (and take one last synchronous sample,
        so short runs always leave at least one snapshot behind)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_poll:
            self.poll_once()

    def __enter__(self) -> "HealthMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def breaches(self) -> int:
        """Count of breach-entry alerts so far."""
        with self._lock:
            return sum(1 for a in self.alerts if a["to"] == "breach")

    def summary(self) -> dict:
        """Manifest-ready aggregate (what ``BENCH_monitor.json`` records)."""
        with self._lock:
            snaps = list(self.snapshots)
            alerts = list(self.alerts)
            rules = list(self._rules)
        by_rule: dict[str, dict] = {}
        for a in alerts:
            agg = by_rule.setdefault(a["rule"], {"warn": 0, "breach": 0, "ok": 0})
            agg[a["to"]] += 1
        return {
            "snapshots": len(snaps),
            "interval_s": self.interval_s,
            "rules": [r.as_dict() for r in rules],
            "alerts": alerts,
            "breach_alerts": sum(1 for a in alerts if a["to"] == "breach"),
            "warn_alerts": sum(1 for a in alerts if a["to"] == "warn"),
            "by_rule": by_rule,
            "worst": worst_state(s.worst for s in snaps),
            "last": snaps[-1].as_dict() if snaps else None,
        }
