"""Process-wide metric registry: counters, gauges, histograms with labels.

Where spans (``trace.py``) answer "how long did this extent take", metrics
answer "how much of X has happened so far": bytes on the wire, kernel
launches, optimizer updates, evaluations.  Instruments are get-or-created
by ``(name, labels)`` so repeated lookups return the same object::

    from repro.telemetry import metrics
    metrics.REGISTRY.counter("comm.bytes_sent_per_rank").inc(nbytes)
    metrics.REGISTRY.gauge("kalman.lambda").set(lam)
    metrics.REGISTRY.histogram("train.step_seconds").observe(dt)

``REGISTRY.snapshot()`` renders everything to one plain dict (JSON-ready,
what the exporters serialize); ``REGISTRY.reset()`` zeroes it (tests,
per-experiment scoping).

Kernel launches as a standard counter: :func:`enable_kernel_metrics`
installs an adapter into the :mod:`repro.autograd.instrument` reporting
chain, after which every primitive-op execution increments
``autograd.kernel_launches{op=<name>}`` and ``autograd.kernel_bytes``.
This is per-op overhead, so it is off by default and explicitly scoped.
"""

from __future__ import annotations

import math
from typing import Optional

from ..autograd import instrument as _instrument

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "REGISTRY",
    "get_registry",
    "enable_kernel_metrics",
    "disable_kernel_metrics",
]


class Counter:
    """Monotonically increasing accumulator."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-value-wins instrument (e.g. the current lambda)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming distribution: count/sum/min/max plus a bounded sample.

    The first ``max_samples`` observations are retained verbatim for
    percentile queries; count/sum/min/max stay exact regardless.  Two
    histograms :meth:`merge` losslessly (within the reservoir cap), which
    is how per-rank worker latency observations fold into the parent
    registry and into the monitor's sliding windows.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "max_samples")

    def __init__(self, max_samples: int = 4096):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self.max_samples = int(max_samples)

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self.samples) < self.max_samples:
            self.samples.append(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def capped(self) -> bool:
        """True when the percentile reservoir dropped observations (the
        exact count/sum/min/max still cover every one)."""
        return self.count > len(self.samples)

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) from the sample.

        An empty histogram reports 0.0.  ``q <= 0`` and ``q >= 100``
        return the *exact* min/max (tracked for every observation), so
        the tails stay truthful even when the reservoir is capped;
        intermediate quantiles use nearest-rank over the sample.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 100.0:
            return self.max
        if not self.samples:  # merged from a summary-only source
            return 0.0
        s = sorted(self.samples)
        idx = min(int(round(q / 100.0 * (len(s) - 1))), len(s) - 1)
        return s[idx]

    def merge(self, other: "Histogram | dict") -> "Histogram":
        """Fold another histogram (or its :meth:`as_dict` form, e.g. one
        shipped home by a rank worker) into this one.  Exact aggregates
        (count/sum/min/max) merge losslessly; samples merge up to this
        histogram's reservoir cap, flagging :attr:`capped` if truncated.
        """
        if isinstance(other, Histogram):
            other = other.as_dict()
        count = int(other.get("count", 0))
        if count == 0:
            return self
        self.count += count
        self.total += float(other.get("sum", 0.0))
        self.min = min(self.min, float(other.get("min", math.inf)))
        self.max = max(self.max, float(other.get("max", -math.inf)))
        room = self.max_samples - len(self.samples)
        if room > 0:
            self.samples.extend(
                float(v) for v in list(other.get("samples", ()))[:room]
            )
        return self

    def as_dict(self) -> dict:
        """Picklable/JSON-ready full state (inverse-mergeable): the exact
        aggregates plus the raw sample reservoir."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "samples": list(self.samples),
        }

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "capped": self.capped,
        }


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


def _label_str(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricRegistry:
    """Keyed store of instruments; one process-wide instance at ``REGISTRY``."""

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        k = _key(name, labels)
        c = self._counters.get(k)
        if c is None:
            c = self._counters[k] = Counter()
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        k = _key(name, labels)
        g = self._gauges.get(k)
        if g is None:
            g = self._gauges[k] = Gauge()
        return g

    def histogram(self, name: str, max_samples: int = 4096, **labels) -> Histogram:
        k = _key(name, labels)
        h = self._histograms.get(k)
        if h is None:
            h = self._histograms[k] = Histogram(max_samples)
        return h

    def merge_counters(self, counts: dict, **labels) -> None:
        """Fold a plain ``{name: amount}`` mapping into this registry's
        counters (the worker-telemetry merge path: rank workers count
        locally and the parent aggregates into one process-wide view)."""
        for name, amount in counts.items():
            self.counter(name, **labels).inc(float(amount))

    def merge_histograms(self, hists: dict, **labels) -> None:
        """Fold ``{name: Histogram-or-as_dict}`` into this registry's
        histograms (mirror of :meth:`merge_counters`): per-rank latency
        observations merge losslessly instead of being dropped on the
        worker-telemetry path."""
        for name, state in hists.items():
            self.histogram(name, **labels).merge(state)

    # -- introspection -------------------------------------------------
    def snapshot(self) -> dict:
        """All instruments as one JSON-ready dict."""
        return {
            "counters": {
                _label_str(n, lb): c.value for (n, lb), c in self._counters.items()
            },
            "gauges": {
                _label_str(n, lb): g.value for (n, lb), g in self._gauges.items()
            },
            "histograms": {
                _label_str(n, lb): h.summary()
                for (n, lb), h in self._histograms.items()
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: the process-wide registry every instrumented subsystem reports to
REGISTRY = MetricRegistry()


def get_registry() -> MetricRegistry:
    return REGISTRY


# ---------------------------------------------------------------------------
# kernel launches as standard counters
# ---------------------------------------------------------------------------
class _RegistryKernelSink:
    """Duck-typed KernelCounter that forwards launches to a registry."""

    def __init__(self, registry: MetricRegistry):
        self.registry = registry

    def record(self, op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
        self.registry.counter("autograd.kernel_launches", op=op_name).inc()
        self.registry.counter("autograd.kernel_bytes").inc(nbytes)


_KERNEL_SINKS: list[_RegistryKernelSink] = []


def enable_kernel_metrics(registry: MetricRegistry | None = None) -> None:
    """Route every primitive-op launch on the *calling thread* into
    ``registry`` (default: the process-wide one).  Per-op overhead --
    scope it deliberately.  Like tracer stacks, the launch sink stack is
    thread-local: rank workers count under their own sinks and the parent
    merges via :meth:`MetricRegistry.merge_counters`."""
    sink = _RegistryKernelSink(registry or REGISTRY)
    _KERNEL_SINKS.append(sink)
    _instrument.push_sink(sink)


def disable_kernel_metrics() -> None:
    """Undo the innermost :func:`enable_kernel_metrics` (same thread)."""
    if not _KERNEL_SINKS:
        return
    sink = _KERNEL_SINKS.pop()
    _instrument.remove_sink(sink)
