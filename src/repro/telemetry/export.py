"""Exporters: JSONL event stream, aggregated summary dict, human table.

The JSONL schema (one JSON object per line):

* span events -- ``{"type": "span", "name", "span_id", "parent_id",
  "depth", "t_start", "wall_s", "cpu_s", "attrs": {...},
  "counters": {...}}``
* metric snapshots -- ``{"type": "metrics", "data": {"counters": {...},
  "gauges": {...}, "histograms": {...}}}``
* health snapshots / SLO alerts -- ``{"type": "health", ...}`` and
  ``{"type": "alert", ...}`` lines appended by the runtime monitor
  (:mod:`repro.telemetry.monitor`) via :meth:`JsonlExporter.write_event`

so a training run's full observable record is one append-only file that
any later analysis (the Figure 7 queries, a dashboard, a diff between two
PRs) can replay without re-running the experiment.
"""

from __future__ import annotations

import io
import json
from typing import IO, Iterable, Union

from .metrics import MetricRegistry
from .trace import SpanEvent

__all__ = [
    "JsonlExporter",
    "read_jsonl",
    "summarize",
    "format_table",
]


class JsonlExporter:
    """Span-event sink writing one JSON line per event.

    Usable directly as a ``Tracer`` sink and as a context manager::

        with JsonlExporter("run.jsonl") as out, Tracer(sinks=[out]):
            ...
            out.write_metrics(telemetry.metrics.REGISTRY)
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False

    def __call__(self, event: SpanEvent) -> None:
        self._fh.write(json.dumps(event.as_dict()) + "\n")

    def write_metrics(self, registry: MetricRegistry) -> None:
        """Append one metrics-snapshot line."""
        self._fh.write(
            json.dumps({"type": "metrics", "data": registry.snapshot()}) + "\n"
        )

    def write_event(self, event: dict) -> None:
        """Append one arbitrary typed event line (health snapshots and SLO
        alerts from :mod:`repro.telemetry.monitor` use this) and flush, so
        a live dashboard tailing the file sees it immediately."""
        self._fh.write(json.dumps(event, default=str) + "\n")
        self._fh.flush()

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str) -> list[dict]:
    """Load every event line of a JSONL telemetry file."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------
def summarize(events: Iterable[SpanEvent]) -> dict:
    """Aggregate span events by name.

    Accepts :class:`SpanEvent` objects or their ``as_dict`` forms (what
    :func:`read_jsonl` returns), so a summary computed from a re-read
    JSONL file is identical to one computed live; non-span lines (metric
    snapshots, op events) are skipped.

    Returns ``{name: {"count", "wall_s", "cpu_s", "mean_wall_s",
    "min_wall_s", "max_wall_s", "counters": {...summed...}}}``.

    Note that nested spans each contribute their own full extent, so a
    parent's ``wall_s`` already contains its children's; sum *siblings*,
    not the whole table, when adding durations up.
    """
    out: dict[str, dict] = {}
    for ev in events:
        if isinstance(ev, dict):
            if ev.get("type", "span") != "span":
                continue
            ev = SpanEvent.from_dict(ev)
        agg = out.get(ev.name)
        if agg is None:
            agg = out[ev.name] = {
                "count": 0,
                "wall_s": 0.0,
                "cpu_s": 0.0,
                "min_wall_s": float("inf"),
                "max_wall_s": 0.0,
                "counters": {},
            }
        agg["count"] += 1
        agg["wall_s"] += ev.wall_s
        agg["cpu_s"] += ev.cpu_s
        agg["min_wall_s"] = min(agg["min_wall_s"], ev.wall_s)
        agg["max_wall_s"] = max(agg["max_wall_s"], ev.wall_s)
        for k, v in ev.counters.items():
            agg["counters"][k] = agg["counters"].get(k, 0) + v
    for agg in out.values():
        agg["mean_wall_s"] = agg["wall_s"] / agg["count"]
    return out


def format_table(summary: dict, sort_by: str = "wall_s") -> str:
    """Render a :func:`summarize` dict as an aligned text table."""
    headers = ["span", "count", "total s", "mean ms", "cpu s", "kernels"]
    rows = []
    items = sorted(
        summary.items(), key=lambda kv: kv[1].get(sort_by, 0.0), reverse=True
    )
    for name, agg in items:
        rows.append([
            name,
            str(agg["count"]),
            f"{agg['wall_s']:.4f}",
            f"{agg['mean_wall_s'] * 1e3:.3f}",
            f"{agg['cpu_s']:.4f}",
            str(int(agg["counters"].get("kernels", 0))),
        ])
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for r in rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(r, widths)) + "\n")
    return out.getvalue()
