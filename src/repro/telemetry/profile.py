"""Op-level profiler: timed kernel timelines, phase attribution, Chrome traces.

The paper's systems claims are *per-kernel accounting* claims: Figure 7(b)
counts kernel launches per update flavour, Tables 4/5 dissect iteration
time by phase.  :class:`Profiler` turns the kernel-launch hook of
:mod:`repro.autograd.instrument` into a **timed op timeline**: every
primitive op becomes one :class:`OpEvent` carrying

* its name, output bytes, and a FLOP estimate derived from operand shapes,
* its wall-clock position and duration (the gap since the previous
  profiler event on the owning tracer's thread; span boundaries reset the
  cursor, so an op's duration covers its numpy compute plus the python
  dispatch in front of it -- the honest analog of a CUDA kernel's
  launch-to-completion interval on this eager engine),
* the innermost open telemetry span and a **phase** classification
  (``forward_energy`` / ``forward_force`` / ``force_graph`` /
  ``backward`` / ``kf_update`` / ``reduce``), which is how the live
  Figure 7(b)-style per-phase launch counts fall out of a real run.

A profiler is owned by a :class:`~repro.telemetry.trace.Tracer`
(``Tracer(profile=True)`` / ``telemetry.enable(profile=True)``) and is
installed/removed together with it.  Rank workers profile under their own
tracer and ship ``OpEvent.as_dict()`` payloads home inside the task
telemetry; :meth:`Profiler.emit_foreign` merges them with rank/pid-tagged
track ids, so one trace holds every rank's timeline.

Export is Chrome trace-event JSON (:func:`to_chrome_trace` /
:func:`write_chrome_trace`) -- load the file in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` -- plus a top-K ops
table (:func:`format_ops_table`, the sibling of
:func:`repro.telemetry.format_table`).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..autograd import instrument as _instrument

__all__ = [
    "OpEvent",
    "Profiler",
    "PHASES",
    "classify_phase",
    "estimate_flops",
    "phase_span_times",
    "summarize_phases",
    "summarize_ops",
    "format_ops_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: the canonical phase vocabulary (plus the catch-all "untracked")
PHASES = (
    "forward_energy",
    "forward_force",
    "force_graph",
    "backward",
    "kf_update",
    "reduce",
)


@dataclass
class OpEvent:
    """One primitive-op execution ("kernel launch") on the timeline."""

    name: str
    #: seconds since the owning tracer's epoch, at op start
    t_start: float
    #: gap since the previous profiler event on this timeline (see module
    #: docstring for the semantics)
    dur_s: float
    nbytes: int
    #: FLOP estimate from operand shapes (0.0 when shapes are unknown,
    #: e.g. the bare ``record_launch`` calls of the fused Kalman kernels)
    flops: float
    #: innermost open span name at execution time ("" at top level)
    span: str = ""
    #: phase classification (one of :data:`PHASES`, a span name, or
    #: "untracked")
    phase: str = "untracked"
    #: id of the innermost open span on the owning tracer (None for
    #: foreign/top-level ops)
    span_id: Optional[int] = None
    #: rank track tag; None means the parent ("main") timeline
    rank: Optional[int] = None
    #: OS pid of the recording process (distinguishes process-executor
    #: ranks from thread-executor ranks that share the parent's pid)
    pid: int = 0

    def as_dict(self) -> dict:
        """JSON-ready representation (the JSONL op-event schema)."""
        return {
            "type": "op",
            "name": self.name,
            "t_start": self.t_start,
            "dur_s": self.dur_s,
            "nbytes": self.nbytes,
            "flops": self.flops,
            "span": self.span,
            "phase": self.phase,
            "span_id": self.span_id,
            "rank": self.rank,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "OpEvent":
        return cls(
            name=d["name"],
            t_start=float(d.get("t_start", 0.0)),
            dur_s=float(d.get("dur_s", 0.0)),
            nbytes=int(d.get("nbytes", 0)),
            flops=float(d.get("flops", 0.0)),
            span=d.get("span", ""),
            phase=d.get("phase", "untracked"),
            span_id=d.get("span_id"),
            rank=d.get("rank"),
            pid=int(d.get("pid", 0)),
        )


# ---------------------------------------------------------------------------
# phase classification
# ---------------------------------------------------------------------------
def classify_phase(stack) -> str:
    """Map an open-span stack (outermost..innermost, items with ``name``
    and ``attrs``) to one of the canonical phases.

    The rules mirror how the hot paths are instrumented:

    * ``fekf.forward`` inside a ``fekf.update`` (serial path) or
      ``worker.task`` (rank-worker path) span is the energy- or
      force-update forward, by the enclosing span's ``kind`` attr; a
      *bare* ``fekf.forward`` is the shared force-graph build (serial
      reuse path and the executor ``graph_task`` both run it outside any
      kinded span);
    * ``fekf.gradient`` is the backward pass;
    * ``fekf.kalman`` / ``parallel.kalman`` is the filter algebra;
    * ``parallel.comm`` is the allreduce/broadcast reduction step.
    """
    if not stack:
        return "untracked"
    inner = stack[-1].name
    if inner == "fekf.gradient":
        return "backward"
    if inner in ("fekf.kalman", "parallel.kalman"):
        return "kf_update"
    if inner == "parallel.comm":
        return "reduce"
    if inner == "fekf.forward":
        for sp in reversed(stack[:-1]):
            if sp.name in ("fekf.update", "worker.task"):
                kind = sp.attrs.get("kind")
                if kind == "energy":
                    return "forward_energy"
                if kind == "force":
                    return "forward_force"
                break  # un-kinded worker.task == graph_task
        return "force_graph"
    return inner


# ---------------------------------------------------------------------------
# FLOP estimation from operand shapes
# ---------------------------------------------------------------------------
_ELEMENTWISE = frozenset(
    {"add", "sub", "mul", "div", "neg", "abs", "maximum", "where"}
)
_TRANSCENDENTAL = frozenset({"exp", "log", "tanh", "sqrt", "pow"})
_MOVEMENT = frozenset({"reshape", "transpose", "broadcast", "concat", "gather"})
#: cost of one transcendental evaluation, in flops (the usual rough budget)
_TRANSCENDENTAL_FLOPS = 8.0


def estimate_flops(op: str, out_shape, in_shapes) -> float:
    """Estimate the floating-point work of one primitive op.

    A deliberate order-of-magnitude model (exactly what a roofline needs):
    matmul-family ops get the 2mkn count, elementwise ops one flop per
    output element, transcendentals a fixed per-element budget, pure data
    movement zero.  Unknown shapes (bare ``record_launch`` calls) yield 0.
    """
    if out_shape is None:
        return 0.0
    out = float(math.prod(out_shape))
    if op == "matmul" and in_shapes:
        return 2.0 * in_shapes[0][-1] * out
    if op == "linear_fused" and in_shapes:
        return (2.0 * in_shapes[0][-1] + 1.0) * out
    if op in ("linear_tanh_fused", "residual_linear_tanh_fused") and in_shapes:
        # matmul + bias + tanh (+ residual add)
        return (2.0 * in_shapes[0][-1] + 1.0 + _TRANSCENDENTAL_FLOPS) * out
    if op in _ELEMENTWISE:
        return out
    if op in _TRANSCENDENTAL:
        return _TRANSCENDENTAL_FLOPS * out
    if op in ("sum", "scatter_add") and in_shapes:
        return float(math.prod(in_shapes[0]))
    if op in _MOVEMENT:
        return 0.0
    # default: one flop per output element (covers the fused descriptor
    # kernels' dominant gather-multiply-accumulate loosely)
    return out


# ---------------------------------------------------------------------------
# the profiler
# ---------------------------------------------------------------------------
class Profiler:
    """Timed op timeline, attributed to telemetry spans and phases.

    Owned by a :class:`~repro.telemetry.trace.Tracer`; installed as a
    kernel-launch sink (with shape forwarding) on the thread that installs
    the tracer, for exactly as long as the tracer is installed.  Only
    records while its tracer is the *innermost* tracer on the recording
    thread, so a worker's nested profiling tracer never double-counts into
    the parent's timeline.
    """

    def __init__(self, tracer, max_events: int = 2_000_000):
        self.tracer = tracer
        self.events: list[OpEvent] = []
        self.max_events = int(max_events)
        #: events discarded after :attr:`max_events` filled up
        self.dropped = 0
        self.pid = os.getpid()
        self._cursor = time.perf_counter()
        # cached attribution of the current span-stack state (recomputed
        # by mark(), not per op)
        self._span = ""
        self._span_id: Optional[int] = None
        self._phase = "untracked"

    # -- tracer lifecycle hooks ----------------------------------------
    def install(self) -> None:
        _instrument.push_sink(self, wants_shapes=True)
        self.mark()

    def uninstall(self) -> None:
        _instrument.remove_sink(self, wants_shapes=True)

    def mark(self) -> None:
        """Reset the timeline cursor and re-derive span/phase attribution
        (called by the tracer on every span open/close)."""
        stack = self.tracer._open_stack
        if stack:
            top = stack[-1]
            self._span = top.name
            self._span_id = top.span_id
        else:
            self._span = ""
            self._span_id = None
        self._phase = classify_phase(stack)
        self._cursor = time.perf_counter()

    # -- launch sink protocol ------------------------------------------
    def record(self, op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
        from .trace import current_tracer

        if current_tracer() is not self.tracer:
            return  # a nested (worker) tracer owns this thread's ops
        t1 = time.perf_counter()
        if len(self.events) >= self.max_events:
            self.dropped += 1
            self._cursor = t1
            return
        self.events.append(
            OpEvent(
                name=op_name,
                t_start=self._cursor - self.tracer._epoch,
                dur_s=t1 - self._cursor,
                nbytes=int(nbytes),
                flops=estimate_flops(op_name, out_shape, in_shapes),
                span=self._span,
                phase=self._phase,
                span_id=self._span_id,
                rank=None,
                pid=self.pid,
            )
        )
        self._cursor = t1

    # -- cross-rank merge ----------------------------------------------
    def emit_foreign(self, ops: Iterable[dict], rank: Optional[int] = None, pid: Optional[int] = None) -> None:
        """Merge op events captured by a rank worker (serialized via
        ``OpEvent.as_dict``) into this timeline, tagging their track.

        ``t_start`` stays relative to the *worker's* tracer epoch: each
        rank is its own track with its own clock, which is exactly how the
        Chrome trace renders them.
        """
        for d in ops:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            ev = OpEvent.from_dict(d)
            ev.span_id = None  # worker-local ids are meaningless here
            if rank is not None:
                ev.rank = rank
            if pid is not None:
                ev.pid = pid
            self.events.append(ev)

    # -- aggregation ----------------------------------------------------
    def phase_kernel_counts(self) -> dict[str, int]:
        """Launch count per phase -- the live Figure 7(b) view."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.phase] = out.get(ev.phase, 0) + 1
        return out

    def phase_summary(self) -> dict[str, dict]:
        """Per-phase ``{kernels, wall_s, bytes, flops}`` breakdown."""
        return summarize_phases(self.events)

    def ops_summary(self) -> dict[str, dict]:
        return summarize_ops(self.events)

    def format_table(self, top: int = 15) -> str:
        return format_ops_table(self.events, top=top)


def phase_span_times(span_events: Iterable) -> dict[str, float]:
    """Sum completed-span wall time per classified phase.

    Reconstructs each span's ancestor stack via ``parent_id`` and runs it
    through :func:`classify_phase`, so a ``fekf.forward`` span inside a
    kinded ``fekf.update`` lands in ``forward_energy`` / ``forward_force``
    exactly like its op events would.  Only the span's own wall time is
    summed under its classification (children classify separately), which
    keeps the canonical :data:`PHASES` free of double counting.

    This is the span-level phase clock the compile benchmark compares:
    op-event durations charge each kernel for the python dispatch in front
    of it -- exactly the overhead a fused replay removes -- so phase spans
    are the ruler that times eager and compiled steps the same way.
    """
    from .trace import SpanEvent

    evs = [
        SpanEvent.from_dict(e) if isinstance(e, dict) else e
        for e in span_events
    ]
    by_id = {e.span_id: e for e in evs}
    out: dict[str, float] = {}
    for e in evs:
        stack = [e]
        seen = {e.span_id}
        while stack[-1].parent_id is not None:
            parent = by_id.get(stack[-1].parent_id)
            if parent is None or parent.span_id in seen:
                break
            stack.append(parent)
            seen.add(parent.span_id)
        stack.reverse()
        phase = classify_phase(stack)
        out[phase] = out.get(phase, 0.0) + e.wall_s
    return out


def summarize_phases(events: Iterable[OpEvent]) -> dict[str, dict]:
    """Aggregate op events by phase:
    ``{phase: {kernels, wall_s, bytes, flops}}``."""
    out: dict[str, dict] = {}
    for ev in events:
        if isinstance(ev, dict):
            ev = OpEvent.from_dict(ev)
        agg = out.get(ev.phase)
        if agg is None:
            agg = out[ev.phase] = {
                "kernels": 0, "wall_s": 0.0, "bytes": 0, "flops": 0.0,
            }
        agg["kernels"] += 1
        agg["wall_s"] += ev.dur_s
        agg["bytes"] += ev.nbytes
        agg["flops"] += ev.flops
    return out


def summarize_ops(events: Iterable[OpEvent]) -> dict[str, dict]:
    """Aggregate op events by name: ``{op: {count, wall_s, bytes, flops}}``."""
    out: dict[str, dict] = {}
    for ev in events:
        if isinstance(ev, dict):
            ev = OpEvent.from_dict(ev)
        agg = out.get(ev.name)
        if agg is None:
            agg = out[ev.name] = {
                "count": 0, "wall_s": 0.0, "bytes": 0, "flops": 0.0,
            }
        agg["count"] += 1
        agg["wall_s"] += ev.dur_s
        agg["bytes"] += ev.nbytes
        agg["flops"] += ev.flops
    return out


def format_ops_table(events_or_summary, top: int = 15, sort_by: str = "wall_s") -> str:
    """Render the top-K ops as an aligned text table (the op-level sibling
    of :func:`repro.telemetry.format_table`)."""
    if isinstance(events_or_summary, dict):
        summary = events_or_summary
    else:
        summary = summarize_ops(events_or_summary)
    headers = ["op", "launches", "total ms", "mean us", "MB", "MFLOP"]
    items = sorted(
        summary.items(), key=lambda kv: kv[1].get(sort_by, 0.0), reverse=True
    )[: max(top, 0)]
    rows = []
    for name, agg in items:
        n = max(agg["count"], 1)
        rows.append([
            name,
            str(agg["count"]),
            f"{agg['wall_s'] * 1e3:.3f}",
            f"{agg['wall_s'] / n * 1e6:.1f}",
            f"{agg['bytes'] / (1024 * 1024):.2f}",
            f"{agg['flops'] / 1e6:.2f}",
        ])
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------
def _track_key(rank, pid) -> tuple:
    return ("main",) if rank is None else ("rank", int(rank), int(pid))


def _track_label(key: tuple) -> str:
    if key[0] == "main":
        return "main"
    return f"rank {key[1]} (pid {key[2]})"


def to_chrome_trace(span_events: Iterable = (), op_events: Iterable = ()) -> dict:
    """Render span + op events as a Chrome trace-event JSON object.

    Tracks: the parent timeline is one Chrome "process"; every
    ``(rank, pid)`` pair seen on foreign events becomes its own process,
    so a process-executor run shows one track per rank.  Within a track,
    spans render on tid 0 and the op timeline on tid 1 ("X" complete
    events, microsecond timestamps).  Load the file in Perfetto or
    ``chrome://tracing``.
    """
    spans = []
    for ev in span_events:
        d = ev if isinstance(ev, dict) else ev.as_dict()
        spans.append(d)
    ops = []
    for ev in op_events:
        d = ev if isinstance(ev, dict) else ev.as_dict()
        ops.append(d)

    # assign one chrome pid per track, parent first then ranks in order
    keys: list[tuple] = []
    for d in spans:
        rank = d.get("attrs", {}).get("rank")
        pid = d.get("attrs", {}).get("pid", 0)
        key = _track_key(rank, pid)
        if key not in keys:
            keys.append(key)
    for d in ops:
        key = _track_key(d.get("rank"), d.get("pid", 0))
        if key not in keys:
            keys.append(key)
    keys.sort(key=lambda k: (k[0] != "main", k[1:]))
    pid_of = {k: i + 1 for i, k in enumerate(keys)}

    events: list[dict] = []
    for key, cpid in pid_of.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": cpid, "tid": 0,
            "args": {"name": _track_label(key)},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": cpid, "tid": 0,
            "args": {"name": "spans"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": cpid, "tid": 1,
            "args": {"name": "ops"},
        })
    for d in spans:
        attrs = d.get("attrs", {})
        key = _track_key(attrs.get("rank"), attrs.get("pid", 0))
        events.append({
            "name": d["name"],
            "cat": "span",
            "ph": "X",
            "ts": round(d.get("t_start", 0.0) * 1e6, 3),
            "dur": round(d.get("wall_s", 0.0) * 1e6, 3),
            "pid": pid_of[key],
            "tid": 0,
            "args": {**attrs, **d.get("counters", {})},
        })
    for d in ops:
        key = _track_key(d.get("rank"), d.get("pid", 0))
        events.append({
            "name": d["name"],
            "cat": "op",
            "ph": "X",
            "ts": round(d.get("t_start", 0.0) * 1e6, 3),
            "dur": round(d.get("dur_s", 0.0) * 1e6, 3),
            "pid": pid_of[key],
            "tid": 1,
            "args": {
                "phase": d.get("phase", ""),
                "span": d.get("span", ""),
                "bytes": d.get("nbytes", 0),
                "flops": d.get("flops", 0.0),
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracer=None, span_events=None, op_events=None) -> dict:
    """Write a Chrome trace JSON file from a tracer (spans + profiler ops)
    or explicit event lists; returns the trace object."""
    if tracer is not None:
        if span_events is None:
            span_events = tracer.events
        if op_events is None and getattr(tracer, "profiler", None) is not None:
            op_events = tracer.profiler.events
    trace = to_chrome_trace(span_events or (), op_events or ())
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


def validate_chrome_trace(trace) -> dict:
    """Validate the Chrome trace-event schema; raises ``ValueError`` on
    the first violation.

    Returns ``{"events", "pids", "rank_tracks"}`` -- the rank-track list
    is what the CI smoke job asserts on (>= 2 distinct ranks under the
    process executor).
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("not a Chrome trace object (missing 'traceEvents')")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    pids: set[int] = set()
    rank_tracks: list[str] = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"traceEvents[{i}] missing {field!r}")
        if ev["ph"] == "X":
            for field in ("ts", "dur"):
                if not isinstance(ev.get(field), (int, float)):
                    raise ValueError(
                        f"traceEvents[{i}] 'X' event needs numeric {field!r}"
                    )
        pids.add(ev["pid"])
        if ev["ph"] == "M" and ev["name"] == "process_name":
            label = ev.get("args", {}).get("name", "")
            if label.startswith("rank "):
                rank_tracks.append(label)
    return {"events": len(events), "pids": sorted(pids), "rank_tracks": rank_tracks}
