"""repro.telemetry -- unified observability: spans, metrics, exporters.

One subsystem replaces the four ad-hoc measurement mechanisms the repo
grew up with (inline ``perf_counter`` pairs in the trainer, the one-off
Figure-7 profiler, the communication ledger's private counters, the
kernel-launch counter):

* :func:`span` / :class:`Tracer` -- nested wall/CPU-time spans with
  arbitrary counters, emitted from every hot path (``Trainer.run``,
  ``FEKF.step_batch`` phases, the data-parallel trainer).
* :data:`metrics.REGISTRY` -- process-wide counters / gauges /
  histograms with labels (communication bytes, kernel launches,
  optimizer updates).
* exporters -- JSONL event stream (:class:`JsonlExporter`), aggregated
  summaries (:func:`summarize`), human tables (:func:`format_table`).
* :mod:`profile` -- the op-level profiler (``Tracer(profile=True)`` /
  ``enable(profile=True)``): a timed, span-attributed timeline of every
  primitive-op launch with FLOP/byte estimates, per-phase Figure 7(b)
  breakdowns, and Chrome trace-event export
  (:func:`write_chrome_trace`, loadable in Perfetto).
* :mod:`monitor` -- the runtime health plane: sliding-window SLOs
  (:class:`SlidingHistogram` p99s over the last N seconds), pipeline
  watchdogs (:class:`HeartbeatRegistry`), and the
  :class:`HealthMonitor` background sampler streaming health snapshots
  and breach alerts over the JSONL exporter (live view:
  ``python -m repro.telemetry.monitor``).

Quick start::

    from repro import telemetry

    with telemetry.Tracer(capture_kernels=True) as tr:
        trainer.run(max_epochs=2)
    print(telemetry.format_table(tr.summary()))
    print(telemetry.metrics.REGISTRY.snapshot())

Tracing is off by default and costs one global check per span, so
instrumented code runs at full speed when nobody is watching.
"""

from . import metrics, monitor, profile
from .export import JsonlExporter, format_table, read_jsonl, summarize
from .monitor import (
    HealthMonitor,
    HealthSnapshot,
    HeartbeatRegistry,
    SLORule,
    SLOStatus,
    SlidingHistogram,
    WindowedRate,
)
from .profile import (
    OpEvent,
    Profiler,
    format_ops_table,
    summarize_ops,
    summarize_phases,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    REGISTRY,
    MetricRegistry,
    disable_kernel_metrics,
    enable_kernel_metrics,
    get_registry,
)
from .trace import (
    NULL_SPAN,
    Span,
    SpanEvent,
    Tracer,
    current_span_name,
    current_tracer,
    disable,
    enable,
    span,
)

__all__ = [
    "span",
    "Span",
    "SpanEvent",
    "Tracer",
    "current_tracer",
    "current_span_name",
    "enable",
    "disable",
    "NULL_SPAN",
    "metrics",
    "MetricRegistry",
    "REGISTRY",
    "get_registry",
    "enable_kernel_metrics",
    "disable_kernel_metrics",
    "JsonlExporter",
    "read_jsonl",
    "summarize",
    "format_table",
    "profile",
    "OpEvent",
    "Profiler",
    "summarize_ops",
    "summarize_phases",
    "format_ops_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "monitor",
    "HealthMonitor",
    "HealthSnapshot",
    "HeartbeatRegistry",
    "SLORule",
    "SLOStatus",
    "SlidingHistogram",
    "WindowedRate",
]
