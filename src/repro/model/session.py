"""The unified prediction surface: ``InferenceSession`` + ``Prediction``.

Before this module the repo had three ad-hoc ways to get an energy/force
prediction out of a trained model -- :class:`DeePMDCalculator` for MD,
:meth:`ModelEnsemble.predict` for uncertainty, and hand-rolled
``neighbor_table``/``DescriptorBatch`` plumbing inside the active-learning
loop.  Every consumer now goes through one protocol::

    pred = session.predict(positions, species, cell)   # -> Prediction

implemented by :class:`ModelSession` (one model),
:class:`~repro.model.ensemble.ModelEnsemble` (committee + uncertainty),
:class:`~repro.model.calculator.DeePMDCalculator` (the MD adapter), and
:class:`repro.serve.InferenceService` (the batched server).  A
``Prediction`` carries the monotonic ``model_version`` of the weights
that produced it, which is what makes hot model swap observable.

The frame -> :class:`DescriptorBatch` assembly lives here
(:func:`frames_to_batch`), so descriptor plumbing stays inside
``repro.model`` -- a boundary enforced by the test suite.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..md.cell import Cell
from ..md.neighbor import NeighborTable, neighbor_table
from .config import DeePMDConfig
from .environment import DescriptorBatch
from .network import DeePMD

__all__ = [
    "Prediction",
    "InferenceSession",
    "ModelSession",
    "frames_to_batch",
    "frame_fingerprint",
]


@dataclass
class Prediction:
    """One frame's prediction from any :class:`InferenceSession`.

    ``model_version`` identifies the weights that produced it (monotonic
    under hot swap; 0 for a session that never swaps).  The uncertainty
    fields are ``None`` unless the session is ensemble-backed.
    """

    energy: float
    forces: np.ndarray  # (N, 3)
    model_version: int = 0
    energy_std: Optional[float] = None
    #: DP-GEN's selection signal: max over atoms of the force deviation
    max_force_dev: Optional[float] = None
    #: served from a prediction cache (no forward pass ran for it)
    cached: bool = False


class InferenceSession(abc.ABC):
    """The one prediction API every in-tree consumer goes through.

    Implementations provide :meth:`predict_descriptor_batch` (the raw
    batched forward over an already-assembled :class:`DescriptorBatch`);
    the frame-level entry points are derived from it so single-frame and
    batched calls are bit-identical per frame.
    """

    #: bumped by :meth:`swap`; every Prediction reports the value that
    #: produced it
    _model_version: int = 0

    @property
    def model_version(self) -> int:
        return self._model_version

    @property
    @abc.abstractmethod
    def cfg(self) -> DeePMDConfig:
        """Descriptor configuration (fixes rcut/nmax for neighbor tables)."""

    @abc.abstractmethod
    def predict_descriptor_batch(self, batch: DescriptorBatch) -> dict:
        """Batched raw forward: ``{"energy": (B,), "forces": (B, N, 3)}``
        plus optional ``"energy_std"`` / ``"max_force_dev"`` arrays."""

    # ------------------------------------------------------------------
    def predict(
        self, positions: np.ndarray, species: np.ndarray, cell: Cell
    ) -> Prediction:
        """Energy/forces (+ uncertainty, when available) for one frame."""
        return self.predict_many(np.asarray(positions)[None], species, cell)[0]

    def predict_many(
        self, frames: np.ndarray, species: np.ndarray, cell: Cell
    ) -> list[Prediction]:
        """Predictions for ``frames`` (B, N, 3), one batched forward."""
        batch = frames_to_batch(frames, species, cell, self.cfg)
        out = self.predict_descriptor_batch(batch)
        return self._wrap(out)

    def _wrap(self, out: dict) -> list[Prediction]:
        version = self.model_version
        e_std = out.get("energy_std")
        dev = out.get("max_force_dev")
        return [
            Prediction(
                energy=float(out["energy"][t]),
                forces=out["forces"][t],
                model_version=version,
                energy_std=None if e_std is None else float(e_std[t]),
                max_force_dev=None if dev is None else float(dev[t]),
            )
            for t in range(len(out["energy"]))
        ]

    # ------------------------------------------------------------------
    def swap(self, state) -> int:
        """Replace the underlying weights; returns the new (monotonic)
        ``model_version``.  Implementations override :meth:`_load_state`."""
        self._load_state(state)
        self._model_version += 1
        return self._model_version

    def restore_version(self, version: int) -> int:
        """Fast-forward ``model_version`` when resuming from a checkpoint.

        A resumed online-learning session must serve under the version
        it crashed at -- version-keyed prediction caches and ledgers
        would otherwise alias a fresh session's version 1 with the old
        one.  Only forward moves are allowed (the counter stays
        monotonic).
        """
        version = int(version)
        if version < self._model_version:
            raise ValueError(
                f"cannot rewind model_version {self._model_version} -> {version}"
            )
        self._model_version = version
        return self._model_version

    def _load_state(self, state) -> None:
        raise NotImplementedError(f"{type(self).__name__} does not support swap")


class ModelSession(InferenceSession):
    """A single :class:`DeePMD` model behind the session protocol."""

    def __init__(self, model: DeePMD, fused_env: bool = True):
        self.model = model
        self.fused_env = bool(fused_env)

    @property
    def cfg(self) -> DeePMDConfig:
        return self.model.cfg

    def predict_descriptor_batch(self, batch: DescriptorBatch) -> dict:
        out = self.model.predict(batch, fused_env=self.fused_env)
        return {"energy": out.energy, "forces": out.forces}

    def _load_state(self, state: dict) -> None:
        self.model.load_state_dict(state)


# ---------------------------------------------------------------------------
# frame -> DescriptorBatch assembly (the one place it happens)
# ---------------------------------------------------------------------------
def frames_to_batch(
    frames: np.ndarray,
    species: np.ndarray,
    cell: Cell,
    cfg: DeePMDConfig,
    tables: Optional[Sequence[NeighborTable]] = None,
) -> DescriptorBatch:
    """Assemble a self-contained :class:`DescriptorBatch` for raw frames.

    ``tables`` optionally supplies precomputed per-frame neighbor tables
    (must match ``cfg.rcut``/``cfg.nmax``); the serve layer uses this to
    reuse cached tables.  Label fields stay ``None`` -- this is the
    inference path.
    """
    frames = np.asarray(frames, dtype=np.float64)
    if frames.ndim != 3 or frames.shape[-1] != 3:
        raise ValueError(f"frames must be (B, N, 3), got {frames.shape}")
    b, n = frames.shape[:2]
    idx = np.zeros((b, n, cfg.nmax), dtype=np.int64)
    shift = np.zeros((b, n, cfg.nmax, 3))
    mask = np.zeros((b, n, cfg.nmax), dtype=bool)
    for t, pos in enumerate(frames):
        table = (
            tables[t] if tables is not None and tables[t] is not None
            else neighbor_table(pos, cell, cfg.rcut, cfg.nmax)
        )
        idx[t], shift[t], mask[t] = table.idx, table.shift, table.mask
    frame_offset = (np.arange(b) * n)[:, None, None]
    return DescriptorBatch(
        coords=frames,
        idx_flat=idx + frame_offset,
        shift=shift,
        mask=mask,
        species=np.asarray(species, dtype=np.int64),
    )


def frame_fingerprint(
    positions: np.ndarray, cell: Cell, rcut: float, nmax: int
) -> str:
    """Content hash of everything a neighbor table depends on.

    Two requests with bit-identical positions in the same cell at the
    same cutoff share one fingerprint -- the cache key of the serve
    layer's neighbor/descriptor and prediction caches.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(positions, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(cell.lengths, dtype=np.float64).tobytes())
    h.update(np.float64(rcut).tobytes())
    h.update(np.int64(nmax).tobytes())
    return h.hexdigest()
