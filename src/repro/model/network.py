"""The DeePMD network: embedding net, symmetry-preserving descriptor,
fitting net, total energy, and forces.

Pipeline (paper Sec. 2.1, Figure 2):

1. environment matrix R~_i (built in :mod:`.environment`);
2. embedding net G_i = G(s(r_i.)) -- tanh layer + two residual layers;
3. descriptor D_i = (R~_i^T G_i)^T (R~_i^T G_i^<), flattened to M*M<;
4. fitting net (tanh layer, two residual layers, linear head) -> E_i;
5. E_tot = sum_i E_i (+ per-species energy bias), F_i = -dE_tot/dr_i.

Optimization toggles mirror the paper's Figure 7 presets:

* ``fused_env``    -- hand-derived descriptor-environment kernel (Opt1);
* ``fused layers`` -- via :func:`repro.autograd.fused_kernels` (Opt2);
* the optimizer-side fusions (Opt3) live in :mod:`repro.optim.kalman`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Tensor, grad, no_grad, ops
from ..autograd.fuse import linear, linear_tanh, residual_linear_tanh
from ..data.source import FrameSource
from .config import DeePMDConfig
from .environment import (
    DescriptorBatch,
    EnvStats,
    compute_stats,
    environment_fused,
    environment_graph,
    identity_stats,
    make_batch,
)
from .params import ParamStore


@dataclass
class EnergyForces:
    """Raw-numpy prediction bundle."""

    energy: np.ndarray  # (B,)
    forces: Optional[np.ndarray]  # (B, N, 3)


class DeePMD:
    """Deep Potential model with the paper's architecture.

    Parameters
    ----------
    cfg:
        Architecture/descriptor hyperparameters.
    n_species:
        Number of element types in the system (energy-bias table size).
    stats:
        Environment normalization; pass the result of
        :func:`repro.model.environment.compute_stats` (or leave ``None``
        for identity, e.g. in unit tests).
    energy_bias:
        Per-species constant added to each atomic energy (non-trainable);
        typically the dataset mean energy per atom.
    """

    def __init__(
        self,
        cfg: DeePMDConfig,
        n_species: int = 1,
        stats: Optional[EnvStats] = None,
        energy_bias: Optional[np.ndarray] = None,
        seed: int = 0,
    ):
        self.cfg = cfg
        self.n_species = int(n_species)
        self.stats = stats if stats is not None else identity_stats()
        self.energy_bias = (
            np.zeros(self.n_species)
            if energy_bias is None
            else np.asarray(energy_bias, dtype=np.float64).reshape(self.n_species)
        )
        self.params = ParamStore()
        self._init_params(seed)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _init_params(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        layer = 0

        def dense(name: str, n_in: int, n_out: int):
            nonlocal layer
            w = rng.normal(scale=1.0 / np.sqrt(n_in + n_out), size=(n_in, n_out))
            b = rng.normal(scale=0.01, size=(n_out,))
            self.params.add(f"{name}_W", w, layer)
            self.params.add(f"{name}_b", b, layer)
            layer += 1

        widths = self.cfg.embedding_widths
        emb_in = 1 + (self.n_species if self.cfg.type_aware else 0)
        dense("emb0", emb_in, widths[0])
        for i in range(1, len(widths)):
            dense(f"emb{i}", widths[i - 1], widths[i])
        d_in = self.cfg.descriptor_size
        fw = self.cfg.fitting_widths
        dense("fit0", d_in, fw[0])
        for i in range(1, len(fw)):
            dense(f"fit{i}", fw[i - 1], fw[i])
        dense("fit_out", fw[-1], 1)

    @classmethod
    def for_dataset(
        cls,
        dataset: FrameSource,
        cfg: Optional[DeePMDConfig] = None,
        seed: int = 0,
    ) -> "DeePMD":
        """Build a model with normalization stats and energy bias taken
        from the source (the standard construction path).  Any
        :class:`~repro.data.source.FrameSource` works -- stats sample a
        bounded number of frames, so an out-of-core store stays
        out-of-core."""
        if cfg is None:
            cfg = DeePMDConfig.paper()
        stats = compute_stats(dataset, cfg)
        e_mean, _ = dataset.energy_per_atom_stats()
        n_sp = max(dataset.n_species, 1)
        return cls(
            cfg,
            n_species=n_sp,
            stats=stats,
            energy_bias=np.full(n_sp, e_mean),
            seed=seed,
        )

    # ------------------------------------------------------------------
    @property
    def num_params(self) -> int:
        return self.params.num_params

    def param_tensors(self) -> dict[str, Tensor]:
        """Fresh leaf tensors over the current parameter values."""
        return {
            name: Tensor(self.params[name], requires_grad=True)
            for name in self.params.names()
        }

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def _net(self, prefix: str, x: Tensor, p: dict[str, Tensor], n_layers: int) -> Tensor:
        """tanh first layer then residual layers where widths allow."""
        h = linear_tanh(x, p[f"{prefix}0_W"], p[f"{prefix}0_b"])
        for i in range(1, n_layers):
            w = p[f"{prefix}{i}_W"]
            if w.shape[0] == w.shape[1]:
                h = residual_linear_tanh(h, w, p[f"{prefix}{i}_b"])
            else:
                h = linear_tanh(h, w, p[f"{prefix}{i}_b"])
        return h

    def energy_graph(
        self,
        coords: Tensor,
        batch: DescriptorBatch,
        p: Optional[dict[str, Tensor]] = None,
        fused_env: bool = False,
    ) -> Tensor:
        """Per-frame total energies (B,) as a differentiable graph."""
        if p is None:
            p = self.param_tensors()
        cfg = self.cfg
        b, n = batch.batch_size, batch.n_atoms
        env_fn = environment_fused if fused_env else environment_graph
        rn = env_fn(coords, batch, cfg, self.stats)  # (B, N, Nm, 4)
        sn = rn[..., 0:1]  # radial column feeds the embedding
        if cfg.type_aware:
            # s(r) * [1, onehot(neighbor type)]: the species channels are
            # constants, so this is a single broadcasting multiply
            neigh_types = batch.species[batch.idx_flat % n]  # (B, N, Nm)
            chan = np.zeros((b, n, batch.nmax, 1 + self.n_species))
            chan[..., 0] = 1.0
            np.put_along_axis(
                chan[..., 1:], neigh_types[..., None], 1.0, axis=-1
            )
            sn = ops.mul(sn, Tensor(chan))
        g = self._net("emb", sn, p, len(cfg.embedding_widths))  # (B,N,Nm,M)
        x = ops.matmul(ops.swapaxes(rn, -1, -2), g)  # (B, N, 4, M)
        x = ops.mul(x, 1.0 / cfg.nmax)
        x_less = x[..., : cfg.m_less]
        d = ops.matmul(ops.swapaxes(x, -1, -2), x_less)  # (B, N, M, M<)
        d = ops.reshape(d, (b, n, cfg.descriptor_size))
        h = self._net("fit", d, p, len(cfg.fitting_widths))
        e_atom = linear(h, p["fit_out_W"], p["fit_out_b"])  # (B, N, 1)
        bias = Tensor(self.energy_bias[batch.species][None, :, None])
        e_atom = ops.add(e_atom, bias)
        return ops.tsum(ops.reshape(e_atom, (b, n)), axis=1)

    # ------------------------------------------------------------------
    # prediction APIs (numpy in / numpy out)
    # ------------------------------------------------------------------
    def predict_energy(self, batch: DescriptorBatch, fused_env: bool = True) -> np.ndarray:
        """Total energies without force evaluation (inference path)."""
        with no_grad():
            e = self.energy_graph(Tensor(batch.coords), batch, fused_env=fused_env)
        return e.data

    def predict(
        self, batch: DescriptorBatch, fused_env: bool = False
    ) -> EnergyForces:
        """Energies and forces; forces via backward through the graph
        (``fused_env=True`` switches to the hand-derived Opt1 kernel)."""
        coords = Tensor(batch.coords, requires_grad=True)
        e = self.energy_graph(coords, batch, fused_env=fused_env)
        (gc,) = grad(ops.tsum(e), [coords])
        return EnergyForces(energy=e.data, forces=-gc.data)

    def evaluate_rmse(
        self, dataset: FrameSource, max_frames: int = 128, fused_env: bool = True
    ) -> dict[str, float]:
        """Energy (per atom) and force RMSE over (a sample of) a source."""
        take = np.arange(dataset.n_frames)
        if dataset.n_frames > max_frames:
            take = np.linspace(0, dataset.n_frames - 1, max_frames).astype(int)
        batch = make_batch(dataset, take, self.cfg)
        pred = self.predict(batch, fused_env=fused_env)
        n = dataset.n_atoms
        e_rmse = float(
            np.sqrt(np.mean(((pred.energy - batch.energies) / n) ** 2))
        )
        f_rmse = float(np.sqrt(np.mean((pred.forces - batch.forces) ** 2)))
        return {"energy_rmse": e_rmse, "force_rmse": f_rmse, "total_rmse": e_rmse + f_rmse}

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """All trainable parameters plus the non-trainable constants the
        predictions depend on (energy bias and environment normalization)."""
        out = {name: self.params[name].copy() for name in self.params.names()}
        out["__energy_bias__"] = self.energy_bias.copy()
        out["__davg__"] = self.stats.davg.copy()
        out["__dstd__"] = self.stats.dstd.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for name in self.params.names():
            self.params[name] = state[name]
        if "__energy_bias__" in state:
            self.energy_bias = np.asarray(state["__energy_bias__"])
        if "__davg__" in state:
            self.stats = EnvStats(
                davg=np.asarray(state["__davg__"]),
                dstd=np.asarray(state["__dstd__"]),
            )
