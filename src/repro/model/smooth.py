"""The DeePMD smooth switching function s(r).

s(r) = 1/r                         for r < rcs
     = (1/r) * p(u),  u=(r-rcs)/(rc-rcs)   for rcs <= r < rc
     = 0                           for r >= rc

with p(u) = u^3(-6u^2 + 15u - 10) + 1, which is 1 at u=0, 0 at u=1 and has
zero slope at both ends, so s and ds/dr are continuous everywhere.

Both an autograd-graph implementation (used when forces flow through the
graph) and a raw-numpy implementation returning (s, ds/dr) (used by the
hand-derived Opt1 kernels) are provided; the tests pin them against each
other and against finite differences.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, ops


def poly_switch_np(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """p(u) and dp/du."""
    p = u**3 * (-6.0 * u**2 + 15.0 * u - 10.0) + 1.0
    dp = u**2 * (-30.0 * u**2 + 60.0 * u - 30.0)
    return p, dp


def smooth_np(r: np.ndarray, rcs: float, rc: float) -> tuple[np.ndarray, np.ndarray]:
    """s(r) and ds/dr as raw numpy arrays."""
    r = np.asarray(r, dtype=np.float64)
    r_safe = np.where(r > 0, r, 1.0)
    inv = 1.0 / r_safe
    u = np.clip((r - rcs) / (rc - rcs), 0.0, 1.0)
    p, dp = poly_switch_np(u)
    inner = r < rcs
    mid = (r >= rcs) & (r < rc)
    s = np.where(inner, inv, np.where(mid, inv * p, 0.0))
    ds_inner = -inv * inv
    ds_mid = -inv * inv * p + inv * dp / (rc - rcs)
    ds = np.where(inner, ds_inner, np.where(mid, ds_mid, 0.0))
    return s, ds


def smooth_graph(r: Tensor, rcs: float, rc: float, valid_mask: np.ndarray) -> Tensor:
    """s(r) as an autograd graph.

    ``valid_mask`` marks real (non-padded) neighbor slots; padded slots are
    forced to exactly zero so they contribute nothing to the descriptor
    regardless of the junk distances they carry.
    """
    # branch-free clip form: u = clip((r-rcs)/(rc-rcs), 0, 1) collapses the
    # three regions into one expression -- p(0)=1 exactly (inner region
    # reduces to inv*1 == inv bitwise) and p(1)=0 with dp(1)=0 exactly (the
    # tail region and its gradient vanish).  Only the *static* padding mask
    # remains data-dependent, so a recorded tape of this graph replays for
    # any distances of the same shape (the value-dependent inner/mid masks
    # of the old form froze at trace time).
    # guard the 1/r against padded slots before dividing
    r_safe = ops.where(valid_mask, r, ops.ones_like(r))
    inv = ops.div(1.0, r_safe)
    u_raw = ops.div(ops.sub(r_safe, rcs), rc - rcs)
    u = ops.minimum(ops.maximum(u_raw, 0.0), 1.0)
    u3 = ops.mul(ops.mul(u, u), u)
    p = ops.add(
        ops.mul(u3, ops.add(ops.mul(u, ops.sub(ops.mul(u, -6.0), -15.0)), -10.0)),
        1.0,
    )
    s = ops.mul(inv, p)
    return ops.where(valid_mask, s, ops.zeros_like(r))
