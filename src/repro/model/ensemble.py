"""Model ensembles with force-deviation uncertainty.

The online-learning workflow the paper motivates (Figure 1) is, in
practice, the DP-GEN concurrent-learning loop: train an *ensemble* of
models differing only in initialization, drive MD with one of them, and
use the ensemble's **maximum atomic force deviation** as the uncertainty
signal that decides which configurations need new reference labels.
This module provides that ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .environment import DescriptorBatch
from .network import DeePMD


@dataclass
class EnsemblePrediction:
    """Mean predictions plus the per-frame uncertainty signal."""

    energy: np.ndarray  # (B,) ensemble mean
    forces: np.ndarray  # (B, N, 3) ensemble mean
    energy_std: np.ndarray  # (B,)
    #: max over atoms of the std (over models) of the force vector norm --
    #: DP-GEN's "model deviation" selection criterion
    max_force_dev: np.ndarray  # (B,)


class ModelEnsemble:
    """A committee of DeePMD models sharing architecture and data stats."""

    def __init__(self, models: list[DeePMD]):
        if not models:
            raise ValueError("ensemble needs at least one model")
        if len({m.num_params for m in models}) != 1:
            raise ValueError("ensemble models must share one architecture")
        self.models = list(models)

    @classmethod
    def for_dataset(cls, dataset, cfg, n_models: int = 4, seed: int = 0) -> "ModelEnsemble":
        """Build ``n_models`` with different weight seeds (DP-GEN style)."""
        return cls([DeePMD.for_dataset(dataset, cfg, seed=seed + k) for k in range(n_models)])

    def __len__(self) -> int:
        return len(self.models)

    @property
    def cfg(self):
        return self.models[0].cfg

    # ------------------------------------------------------------------
    def predict(self, batch: DescriptorBatch, fused_env: bool = True) -> EnsemblePrediction:
        energies, forces = [], []
        for model in self.models:
            out = model.predict(batch, fused_env=fused_env)
            energies.append(out.energy)
            forces.append(out.forces)
        e = np.stack(energies)  # (M, B)
        f = np.stack(forces)  # (M, B, N, 3)
        force_dev = np.linalg.norm(f - f.mean(axis=0), axis=-1)  # (M, B, N)
        per_atom_dev = np.sqrt(np.mean(force_dev**2, axis=0))  # (B, N)
        return EnsemblePrediction(
            energy=e.mean(axis=0),
            forces=f.mean(axis=0),
            energy_std=e.std(axis=0),
            max_force_dev=per_atom_dev.max(axis=1),
        )

    def max_force_deviation(self, batch: DescriptorBatch) -> np.ndarray:
        """Just the selection signal (B,)."""
        return self.predict(batch).max_force_dev
