"""Model ensembles with force-deviation uncertainty.

The online-learning workflow the paper motivates (Figure 1) is, in
practice, the DP-GEN concurrent-learning loop: train an *ensemble* of
models differing only in initialization, drive MD with one of them, and
use the ensemble's **maximum atomic force deviation** as the uncertainty
signal that decides which configurations need new reference labels.
This module provides that ensemble.

:class:`ModelEnsemble` implements the
:class:`~repro.model.session.InferenceSession` protocol: frame-level
``predict(positions, species, cell)`` calls return
:class:`~repro.model.session.Prediction` objects carrying the committee
mean plus the uncertainty fields.  The pre-protocol batched entry point
(``predict(DescriptorBatch) -> EnsemblePrediction``) is kept for training
code that already holds an assembled batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .environment import DescriptorBatch
from .network import DeePMD
from .session import InferenceSession


@dataclass
class EnsemblePrediction:
    """Mean predictions plus the per-frame uncertainty signal."""

    energy: np.ndarray  # (B,) ensemble mean
    forces: np.ndarray  # (B, N, 3) ensemble mean
    energy_std: np.ndarray  # (B,)
    #: max over atoms of the std (over models) of the force vector norm --
    #: DP-GEN's "model deviation" selection criterion
    max_force_dev: np.ndarray  # (B,)


class ModelEnsemble(InferenceSession):
    """A committee of DeePMD models sharing architecture and data stats."""

    def __init__(self, models: list[DeePMD]):
        if not models:
            raise ValueError("ensemble needs at least one model")
        if len({m.num_params for m in models}) != 1:
            raise ValueError("ensemble models must share one architecture")
        self.models = list(models)

    @classmethod
    def for_dataset(cls, dataset, cfg, n_models: int = 4, seed: int = 0) -> "ModelEnsemble":
        """Build ``n_models`` with different weight seeds (DP-GEN style)."""
        return cls([DeePMD.for_dataset(dataset, cfg, seed=seed + k) for k in range(n_models)])

    def __len__(self) -> int:
        return len(self.models)

    @property
    def cfg(self):
        return self.models[0].cfg

    # ------------------------------------------------------------------
    def predict(self, batch, species=None, cell=None, fused_env: bool = True):
        """Two entry points behind one name:

        * ``predict(batch: DescriptorBatch)`` -- the pre-protocol batched
          path, returns an :class:`EnsemblePrediction`;
        * ``predict(positions, species, cell)`` -- the
          :class:`InferenceSession` protocol, returns a single
          :class:`~repro.model.session.Prediction`.
        """
        if isinstance(batch, DescriptorBatch):
            return self._predict_batch(batch, fused_env=fused_env)
        if species is None or cell is None:
            raise TypeError(
                "predict(positions, species, cell) requires species and cell "
                "(or pass an assembled DescriptorBatch)"
            )
        return InferenceSession.predict(self, batch, species, cell)

    def _predict_batch(
        self, batch: DescriptorBatch, fused_env: bool = True
    ) -> EnsemblePrediction:
        energies, forces = [], []
        for model in self.models:
            out = model.predict(batch, fused_env=fused_env)
            energies.append(out.energy)
            forces.append(out.forces)
        e = np.stack(energies)  # (M, B)
        f = np.stack(forces)  # (M, B, N, 3)
        force_dev = np.linalg.norm(f - f.mean(axis=0), axis=-1)  # (M, B, N)
        per_atom_dev = np.sqrt(np.mean(force_dev**2, axis=0))  # (B, N)
        return EnsemblePrediction(
            energy=e.mean(axis=0),
            forces=f.mean(axis=0),
            energy_std=e.std(axis=0),
            max_force_dev=per_atom_dev.max(axis=1),
        )

    def predict_descriptor_batch(self, batch: DescriptorBatch) -> dict:
        ep = self._predict_batch(batch, fused_env=True)
        return {
            "energy": ep.energy,
            "forces": ep.forces,
            "energy_std": ep.energy_std,
            "max_force_dev": ep.max_force_dev,
        }

    def max_force_deviation(self, batch: DescriptorBatch) -> np.ndarray:
        """Just the selection signal (B,)."""
        return self._predict_batch(batch).max_force_dev

    def evaluate_rmse(self, dataset, max_frames: int = 128) -> dict[str, float]:
        """Committee-mean energy (per atom) / force RMSE over (a sample
        of) a labeled dataset -- the held-out quality signal the online
        loop's swap promotion gate decides on.  Frame sampling matches
        :meth:`DeePMD.evaluate_rmse` so single-model and ensemble curves
        are comparable."""
        from .environment import make_batch

        take = np.arange(dataset.n_frames)
        if dataset.n_frames > max_frames:
            take = np.linspace(0, dataset.n_frames - 1, max_frames).astype(int)
        batch = make_batch(dataset, take, self.cfg)
        ep = self._predict_batch(batch, fused_env=True)
        n = dataset.n_atoms
        e_rmse = float(np.sqrt(np.mean(((ep.energy - batch.energies) / n) ** 2)))
        f_rmse = float(np.sqrt(np.mean((ep.forces - batch.forces) ** 2)))
        return {
            "energy_rmse": e_rmse,
            "force_rmse": f_rmse,
            "total_rmse": e_rmse + f_rmse,
        }

    # ------------------------------------------------------------------
    def state_dicts(self) -> list[dict]:
        """Per-member state (the hot-swap payload for ensemble serving)."""
        return [m.state_dict() for m in self.models]

    def _load_state(self, state: Sequence[dict]) -> None:
        if len(state) != len(self.models):
            raise ValueError(
                f"swap payload has {len(state)} member states for "
                f"{len(self.models)} models"
            )
        for model, member in zip(self.models, state):
            model.load_state_dict(member)
