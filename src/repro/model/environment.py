"""Environment matrix construction (the descriptor input R~).

For each atom i the smoothed neighbor matrix R~_i has one row per neighbor
slot: ``s(r) * (1, x/r, y/r, z/r)`` (paper Sec. 2.1 step 1).  Rows are
normalized with dataset statistics (davg/dstd) and padded slots are zeroed
*after* normalization so they contribute exactly nothing downstream.

Two implementations, validated against each other in the tests:

* :func:`environment_graph` -- composed from autograd primitives; forces
  come out of plain backward.  This is the "Autograd API" baseline of the
  paper's Figure 7.
* :func:`environment_fused` -- a single hand-derived kernel (the paper's
  Opt1 "customized kernel of the symmetry-preserving descriptor").  Its
  backward (d/dcoords given dE/dR~n) and the transpose of that linear map
  (needed when force predictions are differentiated w.r.t. the weights in
  EKF updates) are both written out analytically, so double backward along
  the weight direction stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..autograd import Tensor, make_op, ops
from ..autograd.instrument import register_op
from ..data.source import FrameSource
from .config import DeePMDConfig
from .smooth import smooth_graph, smooth_np

# the hand-derived Opt1 descriptor kernels: the vjp and its adjoint are
# mutually-transposed linear maps, so derivatives of any order along the
# weight direction are exact (see _make_env_linear_ops)
for _name in ("env_fused", "env_bwd_fused", "env_bwd_transpose_fused"):
    register_op(_name, kind="fused")
del _name


@dataclass
class DescriptorBatch:
    """Batched, training-ready inputs for ``B`` frames of one system.

    ``idx_flat`` indexes into the (B*N, 3) flattened coordinate array so a
    single gather fetches every neighbor; ``shift`` holds the constant
    periodic translations; ``mask`` marks real neighbor slots.
    """

    coords: np.ndarray  # (B, N, 3)
    idx_flat: np.ndarray  # (B, N, Nm) int64 into flattened (B*N)
    shift: np.ndarray  # (B, N, Nm, 3)
    mask: np.ndarray  # (B, N, Nm) bool
    species: np.ndarray  # (N,)
    energies: Optional[np.ndarray] = None  # (B,)
    forces: Optional[np.ndarray] = None  # (B, N, 3)

    @property
    def batch_size(self) -> int:
        return self.coords.shape[0]

    @property
    def n_atoms(self) -> int:
        return self.coords.shape[1]

    @property
    def nmax(self) -> int:
        return self.idx_flat.shape[2]

    def frame_slice(self, lo: int, hi: int) -> "DescriptorBatch":
        """A view of frames [lo, hi) with neighbor indices rebased so the
        sub-batch is self-contained (used for per-rank shards and the
        per-sample Naive-EKF loop)."""
        sel = slice(lo, hi)
        return DescriptorBatch(
            coords=self.coords[sel],
            idx_flat=self.idx_flat[sel] - lo * self.n_atoms,
            shift=self.shift[sel],
            mask=self.mask[sel],
            species=self.species,
            energies=None if self.energies is None else self.energies[sel],
            forces=None if self.forces is None else self.forces[sel],
        )


def make_batch(
    source: FrameSource, indices: np.ndarray, cfg: DeePMDConfig
) -> DescriptorBatch:
    """Assemble a :class:`DescriptorBatch` for the given frame indices.

    ``source`` is any :class:`~repro.data.source.FrameSource` -- the
    in-memory dataset serves views of its cached tables, an out-of-core
    store reads exactly these frames; both produce bit-identical batches
    for equal frames (same neighbor kernel, same packing)."""
    indices = np.asarray(indices, dtype=np.int64)
    nb = source.neighbor_tables(indices, cfg.rcut, cfg.nmax)
    frames = source.get_frames(indices)
    b = len(indices)
    n = source.n_atoms
    frame_offset = (np.arange(b) * n)[:, None, None]
    return DescriptorBatch(
        coords=frames.positions,
        idx_flat=nb.idx + frame_offset,  # (B, N, Nm) within-frame -> flat
        shift=nb.shift,
        mask=nb.mask,
        species=source.species,
        energies=frames.energies,
        forces=frames.forces,
    )


@dataclass(frozen=True)
class EnvStats:
    """Per-column normalization of R~ (davg subtracted, dstd divided)."""

    davg: np.ndarray  # (4,)
    dstd: np.ndarray  # (4,)


def compute_stats(source: FrameSource, cfg: DeePMDConfig, max_frames: int = 32) -> EnvStats:
    """Source davg/dstd of the raw R~ columns over real neighbor slots.

    Follows the DeePMD convention: the three angular columns share the
    radial column's scale and are not shifted (their mean vanishes by
    symmetry), which keeps normalization rotation-equivariant.  Reads at
    most ``max_frames`` frames, so an out-of-core source never has to
    materialize its corpus.
    """
    take = np.linspace(0, source.n_frames - 1, min(max_frames, source.n_frames)).astype(int)
    batch = make_batch(source, take, cfg)
    env = _env_intermediates(batch.coords, batch, cfg)
    m = batch.mask
    s = env.s[m]
    sv = (env.s[..., None] * env.rhat)[m]
    davg0 = float(s.mean()) if s.size else 0.0
    std0 = float(s.std()) + 1e-8
    stdv = float(sv.std()) + 1e-8
    davg = np.array([davg0, 0.0, 0.0, 0.0])
    dstd = np.array([std0, stdv, stdv, stdv])
    return EnvStats(davg=davg, dstd=dstd)


def identity_stats() -> EnvStats:
    """No-op normalization (used by unit tests)."""
    return EnvStats(davg=np.zeros(4), dstd=np.ones(4))


# ---------------------------------------------------------------------------
# shared raw-numpy geometry
# ---------------------------------------------------------------------------
@dataclass
class EnvIntermediates:
    """Raw-numpy geometric quantities reused by fused kernels."""

    rij: np.ndarray  # (B, N, Nm, 3)
    r: np.ndarray  # (B, N, Nm), 0 on padded slots
    rhat: np.ndarray  # (B, N, Nm, 3), 0 on padded slots
    s: np.ndarray  # (B, N, Nm), 0 outside cutoff / padding
    ds: np.ndarray  # (B, N, Nm)


def _env_intermediates(
    coords: np.ndarray, batch: DescriptorBatch, cfg: DeePMDConfig
) -> EnvIntermediates:
    b, n, _ = coords.shape
    flat = coords.reshape(b * n, 3)
    neigh = flat[batch.idx_flat] + batch.shift
    rij = neigh - coords[:, :, None, :]
    r = np.linalg.norm(rij, axis=-1)
    r = np.where(batch.mask, r, 0.0)
    r_safe = np.where(r > 0, r, 1.0)
    rhat = np.where(batch.mask[..., None], rij / r_safe[..., None], 0.0)
    s, ds = smooth_np(r, cfg.rcut_smooth, cfg.rcut)
    s = np.where(batch.mask, s, 0.0)
    ds = np.where(batch.mask, ds, 0.0)
    return EnvIntermediates(rij=rij, r=r, rhat=rhat, s=s, ds=ds)


def environment_np(
    coords: np.ndarray, batch: DescriptorBatch, cfg: DeePMDConfig, stats: EnvStats
) -> tuple[np.ndarray, EnvIntermediates]:
    """Raw-numpy normalized environment matrix (B, N, Nm, 4) + caches."""
    env = _env_intermediates(coords, batch, cfg)
    raw = np.concatenate(
        [env.s[..., None], env.s[..., None] * env.rhat], axis=-1
    )
    rn = (raw - stats.davg) / stats.dstd
    rn = np.where(batch.mask[..., None], rn, 0.0)
    return rn, env


# ---------------------------------------------------------------------------
# graph (baseline) implementation
# ---------------------------------------------------------------------------
def environment_graph(
    coords: Tensor, batch: DescriptorBatch, cfg: DeePMDConfig, stats: EnvStats
) -> Tensor:
    """R~n built from autograd primitives (forces via plain backward)."""
    b, n, _ = coords.shape
    nm = batch.nmax
    flat = ops.reshape(coords, (b * n, 3))
    neigh = ops.index(flat, batch.idx_flat)  # (B, N, Nm, 3)
    center = ops.reshape(coords, (b, n, 1, 3))
    rij = ops.sub(ops.add(neigh, Tensor(batch.shift)), center)
    r2 = ops.tsum(ops.mul(rij, rij), axis=-1)
    r2_safe = ops.where(batch.mask, r2, ops.ones_like(r2))
    r = ops.sqrt(r2_safe)
    s = smooth_graph(r, cfg.rcut_smooth, cfg.rcut, batch.mask)
    s4 = ops.reshape(s, (b, n, nm, 1))
    r4 = ops.reshape(r, (b, n, nm, 1))
    rhat = ops.div(rij, r4)
    raw = ops.concat([s4, ops.mul(s4, rhat)], axis=-1)
    rn = ops.div(ops.sub(raw, Tensor(stats.davg)), Tensor(stats.dstd))
    return ops.where(batch.mask[..., None], rn, ops.zeros_like(rn))


# ---------------------------------------------------------------------------
# fused (Opt1) implementation with hand-derived backward
# ---------------------------------------------------------------------------
def _env_vjp(
    g_rn: np.ndarray, env: EnvIntermediates, batch: DescriptorBatch, stats: EnvStats
) -> np.ndarray:
    """d(sum(R~n * g_rn))/d(coords): the hand-derived Opt1 kernel.

    grij = ds*(g0 + gv.rhat)*rhat + (s/r)*(gv - (gv.rhat)*rhat), scattered
    with -grij on the center atom and +grij on the neighbor.
    """
    g = np.where(batch.mask[..., None], g_rn / stats.dstd, 0.0)
    g0 = g[..., 0]
    gv = g[..., 1:4]
    gv_dot = np.sum(gv * env.rhat, axis=-1)
    r_safe = np.where(env.r > 0, env.r, 1.0)
    radial = env.ds * (g0 + gv_dot)
    grij = radial[..., None] * env.rhat + (env.s / r_safe)[..., None] * (
        gv - gv_dot[..., None] * env.rhat
    )
    grij = np.where(batch.mask[..., None], grij, 0.0)
    b, n = env.r.shape[:2]
    gcoords = -grij.sum(axis=2)  # center contribution
    flat = np.zeros((b * n, 3))
    np.add.at(flat, batch.idx_flat.reshape(-1), grij.reshape(-1, 3))
    return gcoords + flat.reshape(b, n, 3)


def _env_vjp_transpose(
    gg: np.ndarray, env: EnvIntermediates, batch: DescriptorBatch, stats: EnvStats
) -> np.ndarray:
    """Transpose of :func:`_env_vjp` as a linear map: given an upstream
    gradient on coords-gradients, produce the gradient on g_rn.  Needed
    when force predictions are differentiated w.r.t. the weights."""
    b, n = env.r.shape[:2]
    flat = gg.reshape(b * n, 3)
    delta = flat[batch.idx_flat] - gg[:, :, None, :]  # (B, N, Nm, 3)
    d_dot = np.sum(delta * env.rhat, axis=-1)
    r_safe = np.where(env.r > 0, env.r, 1.0)
    out = np.empty(env.rij.shape[:3] + (4,))
    out[..., 0] = env.ds * d_dot
    out[..., 1:4] = (env.ds * d_dot)[..., None] * env.rhat + (env.s / r_safe)[
        ..., None
    ] * (delta - d_dot[..., None] * env.rhat)
    out = np.where(batch.mask[..., None], out / stats.dstd, 0.0)
    return out


def _make_env_linear_ops(env, batch, stats):
    """Mutually-transposed primitives: vjp(g_rn)->gcoords and its adjoint.

    Because the map is linear with weight-independent coefficients, each
    op's backward is exactly the other op, giving correct derivatives of
    any order along the weight direction."""

    def vjp_op(g_rn: Tensor) -> Tensor:
        out = _env_vjp(g_rn.data, env, batch, stats)

        def backward(g: Tensor):
            return (adjoint_op(g),)

        return make_op(out, (g_rn,), backward, "env_bwd_fused")

    def adjoint_op(gg: Tensor) -> Tensor:
        out = _env_vjp_transpose(gg.data, env, batch, stats)

        def backward(g: Tensor):
            return (vjp_op(g),)

        return make_op(out, (gg,), backward, "env_bwd_transpose_fused")

    return vjp_op, adjoint_op


def environment_fused(
    coords: Tensor, batch: DescriptorBatch, cfg: DeePMDConfig, stats: EnvStats
) -> Tensor:
    """R~n as a single fused kernel with hand-derived backward (Opt1)."""
    rn, env = environment_np(coords.data, batch, cfg, stats)
    vjp_op, _ = _make_env_linear_ops(env, batch, stats)

    def backward(g_rn: Tensor):
        return (vjp_op(g_rn),)

    return make_op(rn, (coords,), backward, "env_fused")
