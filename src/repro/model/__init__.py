"""repro.model -- the DeePMD network and its descriptor machinery."""

from .config import DeePMDConfig
from .environment import (
    DescriptorBatch,
    EnvStats,
    compute_stats,
    environment_fused,
    environment_graph,
    environment_np,
    identity_stats,
    make_batch,
)
from .ensemble import EnsemblePrediction, ModelEnsemble
from .network import DeePMD, EnergyForces
from .params import ParamEntry, ParamStore
from .session import (
    InferenceSession,
    ModelSession,
    Prediction,
    frame_fingerprint,
    frames_to_batch,
)

__all__ = [
    "DeePMDConfig",
    "DeePMD",
    "EnergyForces",
    "ModelEnsemble",
    "EnsemblePrediction",
    "InferenceSession",
    "ModelSession",
    "Prediction",
    "frames_to_batch",
    "frame_fingerprint",
    "DescriptorBatch",
    "EnvStats",
    "compute_stats",
    "identity_stats",
    "make_batch",
    "environment_graph",
    "environment_fused",
    "environment_np",
    "ParamStore",
    "ParamEntry",
]
