"""DeePMD model hyperparameters.

Defaults reproduce the paper's Sec. 4 "Model parameters": embedding net
[25, 25, 25] (symmetry order M = 25), descriptor truncation M< = 16
(fitting input 25 * 16 = 400), fitting net [400, 50, 50, 50, 1], tanh
activations.  ``scaled_down()`` provides the reduced network used by the
fast experiment presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DeePMDConfig:
    """Architecture + descriptor hyperparameters for :class:`DeePMD`."""

    #: widths of the three embedding layers; the last is the symmetry order M.
    embedding_widths: tuple[int, ...] = (25, 25, 25)
    #: number of leading embedding columns kept in G< (the truncation M<).
    m_less: int = 16
    #: hidden widths of the fitting net (input is M * m_less, output 1).
    fitting_widths: tuple[int, ...] = (50, 50, 50)
    #: descriptor cutoff radius (Angstrom).
    rcut: float = 5.0
    #: inner smooth-switch radius; s(r) = 1/r below it.
    rcut_smooth: float = 3.0
    #: max neighbors kept per atom (Nm).
    nmax: int = 24
    #: feed the neighbor's species into the embedding net (input becomes
    #: s(r) * [1, onehot(type)] instead of s(r) alone).  The paper's
    #: network embeds the radial channel only; this option improves
    #: multi-species systems (NaCl, CuO, HfO2) at a small parameter cost.
    type_aware: bool = False

    @property
    def m(self) -> int:
        """Symmetry order M (embedding output width)."""
        return self.embedding_widths[-1]

    @property
    def descriptor_size(self) -> int:
        """Flattened descriptor length M * M<."""
        return self.m * self.m_less

    def __post_init__(self):
        if self.m_less > self.m:
            raise ValueError("m_less (M<) cannot exceed the symmetry order M")
        if not 0.0 < self.rcut_smooth < self.rcut:
            raise ValueError("need 0 < rcut_smooth < rcut")
        if len(self.embedding_widths) < 1 or len(self.fitting_widths) < 1:
            raise ValueError("embedding and fitting nets need at least one layer")

    def with_cutoff(self, rcut: float, rcut_smooth: float | None = None, nmax: int | None = None) -> "DeePMDConfig":
        """Copy with a different descriptor cutoff (and optionally Nm)."""
        return replace(
            self,
            rcut=rcut,
            rcut_smooth=rcut_smooth if rcut_smooth is not None else 0.6 * rcut,
            nmax=nmax if nmax is not None else self.nmax,
        )

    @staticmethod
    def paper(rcut: float = 5.0, rcut_smooth: float | None = None, nmax: int = 24) -> "DeePMDConfig":
        """The full-size paper network (~26.5k parameters)."""
        return DeePMDConfig(
            embedding_widths=(25, 25, 25),
            m_less=16,
            fitting_widths=(50, 50, 50),
            rcut=rcut,
            rcut_smooth=rcut_smooth if rcut_smooth is not None else 0.6 * rcut,
            nmax=nmax,
        )

    @staticmethod
    def scaled_down(rcut: float = 5.0, rcut_smooth: float | None = None, nmax: int = 20) -> "DeePMDConfig":
        """A reduced network for minutes-scale CPU experiments (~3k params);
        same topology, same residual structure, same descriptor algebra."""
        return DeePMDConfig(
            embedding_widths=(12, 12, 12),
            m_less=8,
            fitting_widths=(24, 24, 24),
            rcut=rcut,
            rcut_smooth=rcut_smooth if rcut_smooth is not None else 0.6 * rcut,
            nmax=nmax,
        )
