"""Parameter store: named arrays with a canonical flat ordering.

The EKF optimizers view the network as one flat weight vector partitioned
into blocks (the RLEKF gather-and-split strategy), so the parameter store
keeps a deterministic layer order and provides flatten/unflatten for both
values and gradients.  ``layer_sizes()`` feeds the block splitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ParamEntry:
    name: str
    shape: tuple[int, ...]
    offset: int
    size: int
    #: index of the network layer this entry belongs to (W and b of the
    #: same layer share it); blocks never split a W from its b.
    layer: int


class ParamStore:
    """Ordered named parameters backed by one contiguous flat vector."""

    def __init__(self):
        self._entries: list[ParamEntry] = []
        self._values: dict[str, np.ndarray] = {}
        self._offset = 0

    # ------------------------------------------------------------------
    def add(self, name: str, value: np.ndarray, layer: int) -> None:
        if name in self._values:
            raise KeyError(f"duplicate parameter {name!r}")
        value = np.asarray(value, dtype=np.float64)
        self._entries.append(
            ParamEntry(name, value.shape, self._offset, value.size, layer)
        )
        self._values[name] = value
        self._offset += value.size

    def __getitem__(self, name: str) -> np.ndarray:
        return self._values[name]

    def __setitem__(self, name: str, value: np.ndarray) -> None:
        if name not in self._values:
            raise KeyError(name)
        if value.shape != self._values[name].shape:
            raise ValueError(f"shape mismatch for {name!r}")
        self._values[name] = np.asarray(value, dtype=np.float64)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def names(self) -> list[str]:
        return [e.name for e in self._entries]

    def entries(self) -> list[ParamEntry]:
        return list(self._entries)

    @property
    def num_params(self) -> int:
        return self._offset

    # ------------------------------------------------------------------
    def flatten(self) -> np.ndarray:
        """Concatenate all parameters into one (num_params,) vector."""
        out = np.empty(self.num_params)
        for e in self._entries:
            out[e.offset : e.offset + e.size] = self._values[e.name].ravel()
        return out

    def unflatten(self, vec: np.ndarray) -> None:
        """Write a flat vector back into the named parameters."""
        if vec.shape != (self.num_params,):
            raise ValueError(f"expected ({self.num_params},), got {vec.shape}")
        for e in self._entries:
            self._values[e.name] = vec[e.offset : e.offset + e.size].reshape(e.shape).copy()

    def flatten_grads(self, grads: dict[str, np.ndarray]) -> np.ndarray:
        """Flatten a name->grad dict in canonical order (zeros if missing)."""
        out = np.zeros(self.num_params)
        for e in self._entries:
            g = grads.get(e.name)
            if g is not None:
                out[e.offset : e.offset + e.size] = np.asarray(g).ravel()
        return out

    # ------------------------------------------------------------------
    def layer_sizes(self) -> list[tuple[int, int]]:
        """(layer_index, total_size) per layer in canonical order; the unit
        the EKF block splitter gathers (a layer is never split from its
        bias)."""
        sizes: dict[int, int] = {}
        order: list[int] = []
        for e in self._entries:
            if e.layer not in sizes:
                sizes[e.layer] = 0
                order.append(e.layer)
            sizes[e.layer] += e.size
        return [(layer, sizes[layer]) for layer in order]

    def copy(self) -> "ParamStore":
        ps = ParamStore()
        for e in self._entries:
            ps.add(e.name, self._values[e.name].copy(), e.layer)
        return ps
