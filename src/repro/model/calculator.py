"""Use a trained DeePMD model as an MD force field (NNMD inference).

This closes the paper's loop: train a model in minutes, then drive
molecular dynamics with it (Figure 1's workflow).  The calculator
implements the :class:`repro.md.potentials.Potential` interface, so it
plugs directly into :class:`repro.md.LangevinIntegrator`, and the
:class:`repro.model.session.InferenceSession` protocol, so it is also a
first-class prediction surface (the species argument of ``predict`` is
checked against the pinned system).
"""

from __future__ import annotations

import numpy as np

from ..md.cell import Cell
from ..md.potentials import Potential
from .environment import DescriptorBatch
from .network import DeePMD
from .session import InferenceSession, ModelSession


class DeePMDCalculator(Potential, InferenceSession):
    """Energy/force provider backed by a trained :class:`DeePMD` model.

    Parameters
    ----------
    model:
        Trained network (its config fixes the cutoff and Nm).
    species:
        Per-atom species indices of the system being simulated.
    fused_env:
        Use the hand-derived Opt1 descriptor kernel for inference (the
        fast path; bit-identical to the graph path).
    """

    def __init__(self, model: DeePMD, species: np.ndarray, fused_env: bool = True):
        self.model = model
        self.species = np.asarray(species, dtype=np.int64)
        self.fused_env = bool(fused_env)
        self._session = ModelSession(model, fused_env=fused_env)

    # -- InferenceSession ----------------------------------------------
    @property
    def cfg(self):
        return self.model.cfg

    @property
    def model_version(self) -> int:
        return self._session.model_version

    def predict_descriptor_batch(self, batch: DescriptorBatch) -> dict:
        return self._session.predict_descriptor_batch(batch)

    def predict_many(self, frames, species, cell):
        species = np.asarray(species, dtype=np.int64)
        if species.shape != self.species.shape or np.any(species != self.species):
            raise ValueError("species differ from the calculator's pinned system")
        return self._session.predict_many(frames, species, cell)

    def swap(self, state) -> int:
        return self._session.swap(state)

    # -- Potential -----------------------------------------------------
    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        pred = self._session.predict(positions, self.species, cell)
        return pred.energy, pred.forces
