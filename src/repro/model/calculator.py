"""Use a trained DeePMD model as an MD force field (NNMD inference).

This closes the paper's loop: train a model in minutes, then drive
molecular dynamics with it (Figure 1's workflow).  The calculator
implements the :class:`repro.md.potentials.Potential` interface, so it
plugs directly into :class:`repro.md.LangevinIntegrator`.
"""

from __future__ import annotations

import numpy as np

from ..md.cell import Cell
from ..md.neighbor import neighbor_table
from ..md.potentials import Potential
from .environment import DescriptorBatch
from .network import DeePMD


class DeePMDCalculator(Potential):
    """Energy/force provider backed by a trained :class:`DeePMD` model.

    Parameters
    ----------
    model:
        Trained network (its config fixes the cutoff and Nm).
    species:
        Per-atom species indices of the system being simulated.
    fused_env:
        Use the hand-derived Opt1 descriptor kernel for inference (the
        fast path; bit-identical to the graph path).
    """

    def __init__(self, model: DeePMD, species: np.ndarray, fused_env: bool = True):
        self.model = model
        self.species = np.asarray(species, dtype=np.int64)
        self.fused_env = fused_env

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        cfg = self.model.cfg
        table = neighbor_table(positions, cell, cfg.rcut, cfg.nmax)
        batch = DescriptorBatch(
            coords=positions[None],
            idx_flat=table.idx[None],
            shift=table.shift[None],
            mask=table.mask[None],
            species=self.species,
        )
        out = self.model.predict(batch, fused_env=self.fused_env)
        return float(out.energy[0]), out.forces[0]
